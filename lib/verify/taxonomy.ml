(* Crash classes over contract-violation sites. See taxonomy.mli. *)

type cls =
  | Spatial_isolation
  | Memory_management
  | Context_switch
  | Dma_isolation
  | Arithmetic_lemma
  | Kernel_panic
  | Witness_corruption
  | Other

let all =
  [
    Spatial_isolation;
    Memory_management;
    Context_switch;
    Dma_isolation;
    Arithmetic_lemma;
    Kernel_panic;
    Witness_corruption;
    Other;
  ]

let name = function
  | Spatial_isolation -> "spatial-isolation"
  | Memory_management -> "memory-management"
  | Context_switch -> "context-switch"
  | Dma_isolation -> "dma-isolation"
  | Arithmetic_lemma -> "arithmetic-lemma"
  | Kernel_panic -> "kernel-panic"
  | Witness_corruption -> "witness-corruption"
  | Other -> "other"

let of_name s = List.find_opt (fun c -> name c = s) all

(* Site names are free-form ("mc switch_to_user_part1: thread privileged",
   "DmaBuffer.read", "lemma_pow2_octet") — classify on a case-insensitive
   prefix of the whole string, longest-first where prefixes overlap. *)
let patterns =
  [
    ("lemma", Arithmetic_lemma);
    ("dma", Dma_isolation);
    ("cortexmregion", Spatial_isolation);
    ("armv8mregion", Spatial_isolation);
    ("pmpregion", Spatial_isolation);
    ("create_exact_region", Spatial_isolation);
    ("new_regions", Spatial_isolation);
    ("update_regions", Spatial_isolation);
    ("epmp", Spatial_isolation);
    ("pmp", Spatial_isolation);
    ("v8", Spatial_isolation);
    ("appmemoryallocator", Memory_management);
    ("process", Memory_management);
    ("mc", Context_switch);
    ("exn", Context_switch);
    ("switch_to_user", Context_switch);
    ("control_flow", Context_switch);
    ("msr", Context_switch);
    ("preempt", Context_switch);
    ("movw", Context_switch);
    ("movt", Context_switch);
    ("pseudo_ldr", Context_switch);
  ]

let class_of_site site =
  let s = String.lowercase_ascii site in
  let starts p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  match List.find_opt (fun (p, _) -> starts p) patterns with
  | Some (_, c) -> c
  | None -> Other
