type t = { site : string; detail : string }

exception Violation of t

let state = ref true
let enabled () = !state
let set_enabled v = state := v

let with_enabled v f =
  let old = !state in
  state := v;
  Fun.protect ~finally:(fun () -> state := old) f

(* Observability: contract *failures* are rare and interesting, so they are
   the only contract outcome traced — emitting on every successful check
   would swamp any ring buffer and perturb nothing but patience. Global like
   [state]: set it before a run, not mid-flight. *)
let obs : Obs.Event.sink option ref = ref None
let set_obs sink = obs := sink

let fail site detail =
  (match !obs with
  | None -> ()
  | Some emit -> emit (Obs.Event.Contract_failed { site }));
  raise (Violation { site; detail })
let require site ok = if !state && not ok then fail site "precondition failed"
let ensure site ok = if !state && not ok then fail site "postcondition failed"
let invariant site ok = if !state && not ok then fail site "invariant violated"

let failf site fmt = Format.kasprintf (fun detail -> fail site detail) fmt

let requiref site ok fmt =
  if !state && not ok then failf site fmt else Format.ikfprintf ignore Format.str_formatter fmt

let ensuref site ok fmt =
  if !state && not ok then failf site fmt else Format.ikfprintf ignore Format.str_formatter fmt

let invariantf site ok fmt =
  if !state && not ok then failf site fmt else Format.ikfprintf ignore Format.str_formatter fmt

let pp ppf { site; detail } = Format.fprintf ppf "%s: %s" site detail
