(** Program tokens: the serializable names of the programs a recorded
    session loaded. Programs themselves are closures — a bundle cannot
    carry them — but every program a campaign loads is a pure function of
    a small amount of data, so the token re-derives it exactly:

    - ["witness"] — the shared honest witness ({!Apps.Fuzz.witness_script});
    - ["fuzz:SEED:STEPS"] — a random hostile stream
      ({!Apps.Fuzz.random_script});
    - ["genome:ENC"] — a coverage-fuzzer genome ({!Fuzzcov.Input.decode});
    - ["app:NAME"] — a release-suite app by name ({!Apps.Suite}). *)

let resolve token : unit -> Ticktock.Userland.program =
  let prefixed p =
    let lp = String.length p in
    if String.length token >= lp && String.sub token 0 lp = p then
      Some (String.sub token lp (String.length token - lp))
    else None
  in
  let bad fmt = Printf.ksprintf invalid_arg ("Replay.Programs: " ^^ fmt) in
  match token with
  | "witness" -> fun () -> Apps.App_dsl.to_program Apps.Fuzz.witness_script
  | _ -> (
    match prefixed "fuzz:" with
    | Some rest -> (
      match String.split_on_char ':' rest with
      | [ seed; steps ] -> (
        match (int_of_string_opt seed, int_of_string_opt steps) with
        | Some seed, Some steps ->
          fun () -> Apps.App_dsl.to_program (Apps.Fuzz.random_script ~seed ~steps)
        | _ -> bad "bad fuzz token %S (expected fuzz:SEED:STEPS)" token)
      | _ -> bad "bad fuzz token %S (expected fuzz:SEED:STEPS)" token)
    | None -> (
      match prefixed "genome:" with
      | Some enc -> (
        match Fuzzcov.Input.decode enc with
        | Some g -> fun () -> Apps.App_dsl.to_program (Fuzzcov.Input.script g)
        | None -> bad "undecodable genome %S" enc)
      | None -> (
        match prefixed "app:" with
        | Some name -> (
          match
            List.find_opt (fun (a : Apps.Suite.app) -> a.Apps.Suite.app_name = name)
              Apps.Suite.all
          with
          | Some a -> fun () -> Apps.App_dsl.to_program (a.Apps.Suite.script ())
          | None -> bad "unknown suite app %S" name)
        | None -> bad "unknown program token %S" token)))
