(** Recording sessions and reconstructing them from bundles.

    A {e live} session is a {!Ticktock.Replayable} at tick 0 plus
    everything a {!Bundle} must remember about how it got there: the
    pristine image, the input schedule, and a restart closure that brings
    it back to tick 0 exactly. {!record} drives a live session forward
    once, collecting interval marks; {!live_of_bundle} rebuilds the same
    session in a later process (refusing on arch/fingerprint skew); and
    the [of_*] emitters turn campaign failure cells into bundles.

    Sessions record with the obs recorder forced on: the kernel
    fingerprint deliberately does not hash the recorder ring, so a
    recording run is fingerprint-identical to the obs-off campaign run it
    reproduces — replay invisibility, pinned by the conformance tests. *)

open Ticktock

(** Run [f] with the ambient obs mode forced to [On], so every board it
    boots carries an event recorder. *)
let with_obs_on f =
  let old = Obs.Config.auto_mode () in
  Obs.Config.set_auto Obs.Config.On;
  Fun.protect ~finally:(fun () -> Obs.Config.set_auto old) f

(** The whole-board fingerprint hashes the absolute domain-global cycle
    counter, and campaign cells always see it start at zero: pool workers
    are freshly spawned domains, and forked cells restore the captured
    boot-time value. A recording made on a long-lived CLI domain would
    bake that domain's accumulated count into every fingerprint and never
    reproduce elsewhere — so every replay session boots from zero too. *)
let pristine_cycles () = Cycles.set Cycles.global 0

(** The contract-arming convention shared with the coverage fuzzer: the
    verified kernels run with contracts on, the upstream/patched monoliths
    without (they have no contract hooks to fire, and the fuzzer's replay
    path runs them disabled). *)
let contracts_for board = String.length board >= 8 && String.sub board 0 8 = "ticktock"

let contracts_of_kind = function
  | Bundle.Board b -> contracts_for b
  | Bundle.Fabric _ -> true

(** Run [f] with contracts armed the way the bundle's subject expects. *)
let with_contracts (b : Bundle.t) f =
  Verify.Violation.with_enabled (contracts_of_kind b.Bundle.bu_header.Bundle.hd_kind) f

type live = {
  lv_session : Replayable.t;
  lv_restart : unit -> Replayable.t;  (** back to tick 0, post-schedule *)
  lv_snapshots : bool;  (** mid-run capture exact ⇒ interval ladder allowed *)
  lv_kind : Bundle.kind;
  lv_schedule : Schedule.t;
  lv_mem_fp : int64;  (** pristine post-boot memory fp (board sessions) *)
  lv_pages : (int * string) list;  (** pristine image (board sessions) *)
  lv_stop : int -> bool;
      (** recording stop predicate, given the current tick — encapsulates
          the fabric settle drain; board sessions stop at the horizon *)
  lv_oracle_fp : unit -> int64;
      (** the fingerprint the {e campaign} reports for this cell's end
          state. For boards it is the plain session fingerprint; for
          fabric cells the campaign fingerprints {e after} running the
          containment check, whose memory reads advance the cycle counter
          — so this runs the check on a scratch capture and rolls it
          back, leaving the session navigable at its check-free state *)
}

(* --- board sessions --- *)

(** Boot [board] (obs on), remember the pristine image, apply [sched].
    [horizon] only sets the recording stop; navigation may travel past it. *)
let board_live ?(what = "Replay") ~board ~horizon (sched : Schedule.t) =
  pristine_cycles ();
  let k = with_obs_on (fun () -> Capsules.Std_board.make ~what board) in
  let tgt =
    match k.Instance.snap_target with
    | Some tgt -> tgt
    | None -> invalid_arg (what ^ ": board has no snapshot target")
  in
  let lv_mem_fp = Memory.fingerprint tgt.Snapshot.tg_mem in
  let lv_pages = Memory.snapshot_pages (Memory.capture tgt.Snapshot.tg_mem) in
  Schedule.apply k sched;
  let session = Replayable.of_instance ~name:board k in
  let snap0 = session.Replayable.rp_capture () in
  {
    lv_session = session;
    lv_restart =
      (fun () ->
        snap0 ();
        session);
    lv_snapshots = true;
    lv_kind = Bundle.Board board;
    lv_schedule = sched;
    lv_mem_fp;
    lv_pages;
    lv_stop = (fun now -> now >= horizon);
    lv_oracle_fp = session.Replayable.rp_fingerprint;
  }

(* --- fabric sessions ---

   One power-loss cell is a pure function of (plan, sweep seed, cut,
   outage): rebuild the deployment environment, arm the plan's faults
   under the derived cell seed, and wrap the topology session so the cut
   happens at its tick on every (re-)execution — including re-execution
   after a backward jump. Mid-run capture of a topology is inexact (host
   agents hold in-flight state), so fabric sessions navigate by
   restart-and-replay: [lv_snapshots = false]. *)

let fabric_live ~plan ~sweep_seed ~cut ~outage ~horizon =
  pristine_cycles ();
  let p = Fabric.Powerloss.plan_named plan in
  let env = with_obs_on (fun () -> Fabric.Powerloss.make_env ~plan:p ~seed:sweep_seed ()) in
  let topo = env.Fabric.Powerloss.ev_topo in
  let cell_seed =
    Fabric.Powerloss.mix (Fabric.Powerloss.mix sweep_seed cut) (Hashtbl.hash plan)
  in
  let reseed_of id = Fabric.Powerloss.mix cell_seed (id + 101) in
  let board = cut mod Fabric.Deploy.node_count in
  let mk () =
    Fabric.Topology.restore topo env.Fabric.Powerloss.ev_base;
    Fabric.Link.configure topo.Fabric.Topology.link ~faults:p.Fabric.Powerloss.pl_faults
      ~seed:cell_seed;
    Fabric.Ota.reset env.Fabric.Powerloss.ev_stats;
    Array.iter
      (fun (n : Fabric.Topology.node) ->
        n.Fabric.Topology.nd_k.Instance.reseed (reseed_of n.Fabric.Topology.nd_id))
      topo.Fabric.Topology.nodes;
    let base = Fabric.Topology.replayable ~name:plan ~reseed_of topo in
    {
      base with
      Replayable.rp_step =
        (fun ~ticks ->
          for _ = 1 to ticks do
            if base.Replayable.rp_tick () = cut && base.Replayable.rp_crash () = None then
              Fabric.Topology.cut topo board ~outage;
            base.Replayable.rp_step ~ticks:1
          done);
    }
  in
  let outages_open () =
    Array.exists
      (fun (n : Fabric.Topology.node) -> n.Fabric.Topology.nd_outage > 0)
      topo.Fabric.Topology.nodes
  in
  (* the settle drain, mirroring Powerloss.run_cell: [outage + 3] extra
     ticks past the horizon, extended while any outage is still open *)
  let extra = ref (outage + 3) in
  let lv_stop now =
    if now < horizon then false
    else if !extra > 0 || outages_open () then begin
      if !extra > 0 then decr extra;
      false
    end
    else true
  in
  let session = mk () in
  let oracle_fp () =
    let undo = session.Replayable.rp_capture () in
    ignore (Fabric.Deploy.check topo);
    let fp = session.Replayable.rp_fingerprint () in
    undo ();
    fp
  in
  {
    lv_session = session;
    lv_restart = mk;
    lv_snapshots = false;
    lv_kind = Bundle.Fabric { fa_plan = plan; fa_sweep_seed = sweep_seed; fa_cut = cut; fa_outage = outage };
    lv_schedule = [];
    lv_mem_fp = 0L;
    lv_pages = [];
    lv_stop;
    lv_oracle_fp = oracle_fp;
  }

(* --- the recording pass --- *)

(** Drive [lv] forward from tick 0 once, marking the whole-board
    fingerprint at every [interval] boundary, until the session's stop
    predicate fires, the session crashes, or it quiesces. Returns the
    finished bundle (the session is left at its final tick). *)
let record ?(interval = 32) ?(note = "") (lv : live) : Bundle.t =
  if interval < 1 then invalid_arg "Replay.Record.record: interval must be >= 1";
  let s = lv.lv_session in
  if s.Replayable.rp_tick () <> 0 then
    invalid_arg "Replay.Record.record: session must be at tick 0";
  let marks = ref [ (0, s.Replayable.rp_fingerprint ()) ] in
  let continue = ref true in
  while !continue do
    let now = s.Replayable.rp_tick () in
    if lv.lv_stop now || s.Replayable.rp_crash () <> None then continue := false
    else begin
      s.Replayable.rp_step ~ticks:1;
      let now' = s.Replayable.rp_tick () in
      if now' = now then continue := false (* quiesced: nothing left to run *)
      else if now' mod interval = 0 then
        marks := (now', s.Replayable.rp_fingerprint ()) :: !marks
    end
  done;
  let final_tick = s.Replayable.rp_tick () in
  let marks =
    let m = !marks in
    List.rev (if List.mem_assoc final_tick m then m else (final_tick, s.Replayable.rp_fingerprint ()) :: m)
  in
  let events =
    match s.Replayable.rp_events () with
    | None -> []
    | Some r ->
      List.map
        (fun (e : Obs.Recorder.entry) -> (e.Obs.Recorder.at, e.Obs.Recorder.event))
        (Obs.Recorder.entries r)
  in
  {
    Bundle.bu_header =
      {
        Bundle.hd_version = Bundle.version;
        hd_kind = lv.lv_kind;
        hd_arch = s.Replayable.rp_arch;
        hd_layout_fp = Snapshot.layout_fingerprint ();
        hd_interval = interval;
        hd_horizon = final_tick;
        hd_note = note;
        hd_schedule = Schedule.encode lv.lv_schedule;
        hd_mem_fp = lv.lv_mem_fp;
        hd_final_fp = s.Replayable.rp_fingerprint ();
        hd_crash =
          (match s.Replayable.rp_crash () with
          | None -> None
          | Some c -> Some (c.Replayable.cr_tick, c.Replayable.cr_reason));
      };
    bu_pages = lv.lv_pages;
    bu_marks = Array.of_list marks;
    bu_events = events;
  }

(* --- reconstruction: bundle → live session --- *)

(** Rebuild the recorded session from a bundle in this process. Board
    bundles boot the named board, overlay the bundle's pristine image and
    refuse ({!Bundle.Refused}) on arch or memory-fingerprint mismatch —
    the same identity discipline as [Snapshot.load]. Fabric bundles
    rebuild the deployment from the plan. The returned session is at tick
    0, schedule applied, ready to navigate. *)
let live_of_bundle (b : Bundle.t) : live =
  let h = b.Bundle.bu_header in
  match h.Bundle.hd_kind with
  | Bundle.Board board ->
    let lv =
      Verify.Violation.with_enabled (contracts_for board) (fun () ->
          pristine_cycles ();
          let k = with_obs_on (fun () -> Capsules.Std_board.make ~what:"Replay" board) in
          let tgt = Option.get k.Instance.snap_target in
          if tgt.Snapshot.tg_arch <> h.Bundle.hd_arch then
            Bundle.refuse "bundle arch mismatch (bundle %s, board %s)" h.Bundle.hd_arch
              tgt.Snapshot.tg_arch;
          Memory.restore tgt.Snapshot.tg_mem (Memory.snapshot_of_pages b.Bundle.bu_pages);
          let live_fp = Memory.fingerprint tgt.Snapshot.tg_mem in
          if live_fp <> h.Bundle.hd_mem_fp then
            Bundle.refuse "pristine image fingerprint mismatch (bundle %s, restored %s)"
              (Fp.to_hex h.Bundle.hd_mem_fp) (Fp.to_hex live_fp);
          let sched = Bundle.schedule b in
          Schedule.apply k sched;
          let session = Replayable.of_instance ~name:board k in
          let snap0 = session.Replayable.rp_capture () in
          {
            lv_session = session;
            lv_restart =
              (fun () ->
                snap0 ();
                session);
            lv_snapshots = true;
            lv_kind = h.Bundle.hd_kind;
            lv_schedule = sched;
            lv_mem_fp = h.Bundle.hd_mem_fp;
            lv_pages = b.Bundle.bu_pages;
            lv_stop = (fun now -> now >= h.Bundle.hd_horizon);
            lv_oracle_fp = session.Replayable.rp_fingerprint;
          })
    in
    lv
  | Bundle.Fabric { fa_plan; fa_sweep_seed; fa_cut; fa_outage } ->
    let lv =
      fabric_live ~plan:fa_plan ~sweep_seed:fa_sweep_seed ~cut:fa_cut ~outage:fa_outage
        ~horizon:h.Bundle.hd_horizon
    in
    if lv.lv_session.Replayable.rp_arch <> h.Bundle.hd_arch then
      Bundle.refuse "bundle arch mismatch (bundle %s, topology %s)" h.Bundle.hd_arch
        lv.lv_session.Replayable.rp_arch;
    (* the drain already ran during recording: replaying is just stepping
       to the recorded horizon, so the stop is the plain horizon *)
    { lv with lv_stop = (fun now -> now >= h.Bundle.hd_horizon) }

(** Bundle → navigator, marks armed: any forward pass that crosses a mark
    re-verifies the fingerprint and refuses on divergence. *)
let navigator ?interval (b : Bundle.t) =
  let lv = live_of_bundle b in
  Navigator.create
    ~interval:(Option.value ~default:b.Bundle.bu_header.Bundle.hd_interval interval)
    ~snapshots:lv.lv_snapshots ~marks:b.Bundle.bu_marks ~restart:lv.lv_restart lv.lv_session

(** Replay a bundle end to end: re-execute to the recorded horizon and
    report whether the final fingerprint (and crash, if any) reproduced. *)
let reproduces (b : Bundle.t) =
  with_contracts b (fun () ->
      let nav = navigator b in
      match Navigator.goto nav b.Bundle.bu_header.Bundle.hd_horizon with
      | () ->
        Navigator.fingerprint nav = b.Bundle.bu_header.Bundle.hd_final_fp
        && (match (Navigator.crash nav, b.Bundle.bu_header.Bundle.hd_crash) with
           | None, None -> true
           | Some c, Some (tk, reason) ->
             c.Replayable.cr_tick = tk && c.Replayable.cr_reason = reason
           | _ -> false)
      | exception Bundle.Refused _ -> false)

(* --- campaign emitters: failure cell → bundle --- *)

(** Record the fleet cell [c] as a bundle: same board, same per-cell
    reseed, same witness + hostile streams, same tick budget. *)
let of_fleet_cell ?(interval = 64) ?note (spec : Fleet.Campaign.spec)
    (c : Fleet.Campaign.cell) : Bundle.t =
  let plan =
    match
      List.find_opt
        (fun (p : Fleet.Campaign.plan) -> p.Fleet.Campaign.pl_name = c.Fleet.Campaign.cl_plan)
        spec.Fleet.Campaign.sp_plans
    with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf "Replay: cell plan %S not in spec" c.Fleet.Campaign.cl_plan)
  in
  let sched =
    Schedule.fleet_cell ~seed:c.Fleet.Campaign.cl_seed
      ~fuzzers:plan.Fleet.Campaign.pl_fuzzers ~steps:plan.Fleet.Campaign.pl_steps
  in
  let note =
    match note with
    | Some n -> n
    | None ->
      Printf.sprintf "fleet cell %d: board %s plan %s seed %d" c.Fleet.Campaign.cl_index
        c.Fleet.Campaign.cl_board c.Fleet.Campaign.cl_plan c.Fleet.Campaign.cl_seed
  in
  let lv =
    board_live ~board:c.Fleet.Campaign.cl_board ~horizon:spec.Fleet.Campaign.sp_max_ticks
      sched
  in
  record ~interval ~note lv

(** Record a coverage-fuzzer crasher as a bundle: witness + the crashing
    genome on the campaign board, contracts armed per the board family
    (the same arming [Fuzzcov.Engine.replay] uses). *)
let of_fuzzcov ?(interval = 64) ?note (spec : Fuzzcov.Engine.spec)
    (c : Fuzzcov.Engine.crasher) : Bundle.t =
  let board = spec.Fuzzcov.Engine.fc_board in
  let note =
    match note with
    | Some n -> n
    | None ->
      Printf.sprintf "fuzzcov crasher: board %s gen %d site %s" board
        c.Fuzzcov.Engine.cr_gen c.Fuzzcov.Engine.cr_site
  in
  Verify.Violation.with_enabled (contracts_for board) (fun () ->
      let lv =
        board_live ~board ~horizon:c.Fuzzcov.Engine.cr_input.Fuzzcov.Input.in_ticks
          (Schedule.fuzzcov_cell c.Fuzzcov.Engine.cr_input)
      in
      record ~interval ~note lv)

(** Record the fabric cell [c] as a bundle, and require the recording to
    land on the campaign's fingerprint — an emitted bundle that does not
    already reproduce its cell is refused at the source. *)
let of_fabric_cell ?(interval = 16) ?note (spec : Fabric.Campaign.spec)
    (c : Fabric.Campaign.cell) : Bundle.t =
  let note =
    match note with
    | Some n -> n
    | None ->
      Printf.sprintf "fabric cell %d: plan %s cut %d board %d (%s)"
        c.Fabric.Campaign.fc_index c.Fabric.Campaign.fc_plan c.Fabric.Campaign.fc_cut
        c.Fabric.Campaign.fc_board c.Fabric.Campaign.fc_why
  in
  let lv =
    fabric_live ~plan:c.Fabric.Campaign.fc_plan ~sweep_seed:spec.Fabric.Campaign.fb_seed
      ~cut:c.Fabric.Campaign.fc_cut ~outage:spec.Fabric.Campaign.fb_outage
      ~horizon:spec.Fabric.Campaign.fb_horizon
  in
  let b = record ~interval ~note lv in
  (* the campaign fingerprints after its containment check; the bundle's
     final fp is the check-free navigable state, so compare oracles *)
  let oracle = lv.lv_oracle_fp () in
  if oracle <> c.Fabric.Campaign.fc_fp then
    Bundle.refuse "fabric recording diverged from campaign cell %d (cell %s, recorded %s)"
      c.Fabric.Campaign.fc_index
      (Fp.to_hex c.Fabric.Campaign.fc_fp)
      (Fp.to_hex oracle);
  b
