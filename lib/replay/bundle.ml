(** TICKRPL: the on-disk record/replay bundle.

    A bundle is everything a later process needs to reconstruct a recorded
    execution tick-for-tick and then navigate it:

    - the {e pristine image}: the post-boot memory pages of the recorded
      board (board sessions; fabric topologies are rebuilt from their plan
      instead — three boards of pristine pages would triple the file for
      state the plan already determines);
    - the {e input schedule} ({!Schedule}): reseeds and program loads, as
      re-resolvable tokens;
    - {e interval marks}: (tick, whole-board fingerprint) pairs at every
      interval boundary of the recording. Interval {e snapshots} are
      process images holding closures and cannot be marshalled; the
      navigator rebuilds them in one forward pass on load and verifies
      that pass against the marks — any divergence from the recorded
      execution refuses loudly instead of navigating garbage;
    - the {e event log}: the obs ring as recorded, so the trace of the
      original run is inspectable without re-execution;
    - the terminal state: total ticks, final fingerprint, the crash (if
      the recorded run panicked or tripped a contract).

    Like TICKSNAP, loading refuses on magic/version/layout mismatch; the
    memory-fingerprint and mark checks happen when a session is built from
    the bundle ({!Record.session_of_bundle}, {!Navigator}). *)

exception Refused of string

let refuse fmt = Printf.ksprintf (fun m -> raise (Refused m)) fmt
let magic = "TICKRPL"
let version = 1

(** What was recorded: a single campaign board, or one fabric power-loss
    cell (fully determined by plan, sweep seed, cut tick and outage). *)
type kind =
  | Board of string  (** a {!Capsules.Std_board} board name *)
  | Fabric of { fa_plan : string; fa_sweep_seed : int; fa_cut : int; fa_outage : int }

type header = {
  hd_version : int;
  hd_kind : kind;
  hd_arch : string;
  hd_layout_fp : int64;
  hd_interval : int;  (** recording interval K: marks every K ticks *)
  hd_horizon : int;  (** total ticks recorded (fabric: incl. settle drain) *)
  hd_note : string;
  hd_schedule : string;  (** {!Schedule.encode}d; [""] for fabric cells *)
  hd_mem_fp : int64;  (** pristine post-boot memory fp ([0L] for fabric) *)
  hd_final_fp : int64;  (** whole-board fp at [hd_horizon] *)
  hd_crash : (int * string) option;  (** (tick, reason) if the run crashed *)
}

type t = {
  bu_header : header;
  bu_pages : (int * string) list;  (** pristine image; [[]] for fabric *)
  bu_marks : (int * int64) array;  (** (tick, fp) at interval boundaries, ascending *)
  bu_events : (int * Obs.Event.t) list;  (** the recorded obs ring, oldest first *)
}

let kind_name = function Board _ -> "board" | Fabric _ -> "fabric"

let subject (t : t) =
  match t.bu_header.hd_kind with
  | Board b -> b
  | Fabric f -> Printf.sprintf "%s cut=%d outage=%d" f.fa_plan f.fa_cut f.fa_outage

let schedule (t : t) = Schedule.decode t.bu_header.hd_schedule

let save (t : t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc t.bu_header [];
      Marshal.to_channel oc t.bu_pages [];
      Marshal.to_channel oc t.bu_marks [];
      Marshal.to_channel oc t.bu_events [])

let load path : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m =
        try really_input_string ic (String.length magic)
        with End_of_file -> refuse "%s: not a replay bundle (truncated)" path
      in
      if m <> magic then refuse "%s: not a replay bundle" path;
      let header : header = Marshal.from_channel ic in
      if header.hd_version <> version then
        refuse "%s: unsupported bundle version %d (supported: %d)" path header.hd_version
          version;
      if header.hd_layout_fp <> Ticktock.Snapshot.layout_fingerprint () then
        refuse "%s: memory-layout mismatch (bundle built against a different map)" path;
      let bu_pages : (int * string) list = Marshal.from_channel ic in
      let bu_marks : (int * int64) array = Marshal.from_channel ic in
      let bu_events : (int * Obs.Event.t) list = Marshal.from_channel ic in
      { bu_header = header; bu_pages; bu_marks; bu_events })

let pp ppf (t : t) =
  let h = t.bu_header in
  Format.fprintf ppf
    "@[<v>TICKRPL v%d %s %s (%s)@,\
     interval %d  horizon %d  marks %d  events %d  pages %d@,\
     final fp %s%s%s@]"
    h.hd_version (kind_name h.hd_kind) (subject t) h.hd_arch h.hd_interval h.hd_horizon
    (Array.length t.bu_marks)
    (List.length t.bu_events) (List.length t.bu_pages)
    (Fp.to_hex h.hd_final_fp)
    (match h.hd_crash with
    | None -> ""
    | Some (tick, reason) -> Printf.sprintf "\ncrash at tick %d: %s" tick reason)
    (if h.hd_note = "" then "" else "\nnote: " ^ h.hd_note)
