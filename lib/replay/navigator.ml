(** Time-travel navigation over a {!Ticktock.Replayable} session.

    The navigator owns one live session and a ladder of in-memory interval
    snapshots: while stepping forward it captures the whole board every
    [interval] ticks, and a {e backward} step restores the nearest snapshot
    at or below the target and re-executes forward — O(interval) ticks of
    work per backward step, never a from-scratch replay. Sessions whose
    mid-run capture is not exact (fabric topologies: host-side agents hold
    in-flight state a capture cannot see) run with [~snapshots:false] and
    pay a restart-and-replay per backward jump instead; correctness is the
    same, only the cost model differs.

    When created [~marks] (from a {!Bundle}), every forward pass verifies
    the session fingerprint against the recorded mark at each boundary it
    crosses and raises {!Bundle.Refused} on divergence: a bundle that no
    longer reproduces its recording refuses to navigate rather than
    silently showing a different execution. *)

open Ticktock

type t = {
  nv_interval : int;
  nv_snapshots : bool;
  nv_marks : (int, int64) Hashtbl.t;  (** tick → expected fp, from the bundle *)
  mutable nv_session : Replayable.t;
  nv_restart : unit -> Replayable.t;
      (** back to tick 0 in post-schedule state (may rebuild the session) *)
  mutable nv_snaps : (int * (unit -> unit)) list;  (** ascending (tick, restore) *)
}

let session t = t.nv_session
let tick t = t.nv_session.Replayable.rp_tick ()
let fingerprint t = t.nv_session.Replayable.rp_fingerprint ()
let crash t = t.nv_session.Replayable.rp_crash ()
let snapshots_held t = List.length t.nv_snaps

(** [create ~interval ~restart session]: [restart] must bring the session
    back to tick 0 in its exact post-schedule state (rebuilding the session
    value is allowed — fabric restarts do). [session] must {e be} at tick 0
    when handed over. [~snapshots:false] disables the interval ladder for
    sessions whose mid-run capture is inexact. *)
let create ?(interval = 32) ?(snapshots = true) ?(marks = [||]) ~restart session =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun (tk, fp) -> Hashtbl.replace tbl tk fp) marks;
  if interval < 1 then invalid_arg "Navigator.create: interval must be >= 1";
  {
    nv_interval = interval;
    nv_snapshots = snapshots;
    nv_marks = tbl;
    nv_session = session;
    nv_restart = restart;
    nv_snaps = [];
  }

let check_mark t now =
  match Hashtbl.find_opt t.nv_marks now with
  | None -> ()
  | Some expected ->
    let got = fingerprint t in
    if got <> expected then
      raise
        (Bundle.Refused
           (Printf.sprintf
              "replay diverged from recording at tick %d (recorded %s, got %s)" now
              (Fp.to_hex expected) (Fp.to_hex got)))

let snap_here t now =
  if t.nv_snapshots && now mod t.nv_interval = 0 && not (List.mem_assoc now t.nv_snaps)
  then
    t.nv_snaps <-
      List.merge
        (fun (a, _) (b, _) -> compare a b)
        t.nv_snaps
        [ (now, t.nv_session.Replayable.rp_capture ()) ]

(** Step forward to [target], single-tick, capturing interval snapshots and
    verifying marks on the way. Stops early if the session crashes (state
    frozen at the crash tick) or quiesces (no tick progress: nothing left
    to schedule). *)
let forward_to t target =
  let rec go () =
    let now = tick t in
    snap_here t now;
    if now < target && crash t = None then begin
      t.nv_session.Replayable.rp_step ~ticks:1;
      let now' = tick t in
      if now' > now then begin
        check_mark t now';
        go ()
      end
    end
  in
  go ()

(** Travel to absolute tick [target]. Forward is plain stepping; backward
    restores the greatest snapshot at or below [target] (or restarts to
    tick 0) and re-executes. *)
let goto t target =
  if target < 0 then invalid_arg "Navigator.goto: negative tick";
  let now = tick t in
  if target < now then begin
    (match
       List.fold_left
         (fun best (tk, restore) -> if tk <= target then Some (tk, restore) else best)
         None t.nv_snaps
     with
    | Some (_, restore) -> restore ()
    | None -> t.nv_session <- t.nv_restart ());
    (* snapshots above the restore point stay valid: they restore absolute
       state, not deltas, so a later forward pass may reuse them *)
    ()
  end;
  forward_to t target

(** [back t n]: step backward [n] ticks — restore-and-re-execute. *)
let back t n =
  if n < 0 then invalid_arg "Navigator.back: negative count";
  goto t (max 0 (tick t - n))

(* --- inspectors: the debugger surface --- *)

let regs t = t.nv_session.Replayable.rp_regs ()
let mem_read t ~addr ~len = t.nv_session.Replayable.rp_mem_read ~addr ~len
let mpu t = t.nv_session.Replayable.rp_mpu ()

(** Contract/fault events at or before the current tick, oldest first:
    where the verifier (or the hardware) objected on the way here. *)
let violations t =
  match t.nv_session.Replayable.rp_events () with
  | None -> []
  | Some rec_ ->
    let now = tick t in
    List.filter_map
      (fun (e : Obs.Recorder.entry) ->
        if e.Obs.Recorder.at > now then None
        else
          match e.Obs.Recorder.event with
          | Obs.Event.Contract_failed _ | Obs.Event.Faulted _ ->
            Some (e.Obs.Recorder.at, e.Obs.Recorder.event)
          | _ -> None)
      (Obs.Recorder.entries rec_)

(** Chrome-trace JSON of the events in the inclusive tick window. *)
let trace t ~window:(lo, hi) =
  match t.nv_session.Replayable.rp_events () with
  | None -> None
  | Some rec_ ->
    Some (Obs.Chrome.to_json ~name:t.nv_session.Replayable.rp_name ~window:(lo, hi) rec_)
