(** The input schedule of a recorded session: what was loaded onto (and fed
    into) the board, in order, expressed in terms a later process can
    re-resolve. Programs are closures and cannot be serialized, so a
    schedule stores {e program tokens} ({!Programs.resolve}) — "witness",
    "fuzz:SEED:STEPS", "genome:ENC", "app:NAME" — each of which rebuilds
    the exact program deterministically. Applying a schedule uses
    [Instance.load_factory] rather than [load]: a factory-backed process
    snapshots exactly, which is what lets the navigator capture interval
    snapshots {e mid-run} with processes live. The load geometry (min_ram
    2048 / grant 1024 / headroom 2048) is the campaign geometry, so a
    replayed board is layout-identical to the recorded one. *)

open Ticktock

type op =
  | Reseed of int  (** drive the board RNG to this seed *)
  | Load of {
      ld_name : string;
      ld_payload : string;
      ld_prog : string;  (** a {!Programs} token *)
      ld_min_ram : int;
    }

type t = op list

(* --- text codec: one op per line, embedded in the bundle header ---

   Names/payloads/tokens are printed with %S so arbitrary bytes roundtrip;
   the grammar stays greppable ("reseed N" / "load NAME PAYLOAD PROG RAM"). *)

let encode (t : t) =
  String.concat ""
    (List.map
       (function
         | Reseed n -> Printf.sprintf "reseed %d\n" n
         | Load l ->
           Printf.sprintf "load %S %S %S %d\n" l.ld_name l.ld_payload l.ld_prog l.ld_min_ram)
       t)

let decode s : t =
  String.split_on_char '\n' s
  |> List.filter (fun line -> line <> "")
  |> List.map (fun line ->
         try
           if String.length line >= 7 && String.sub line 0 7 = "reseed " then
             Reseed (int_of_string (String.sub line 7 (String.length line - 7)))
           else
             Scanf.sscanf line "load %S %S %S %d" (fun ld_name ld_payload ld_prog ld_min_ram ->
                 Load { ld_name; ld_payload; ld_prog; ld_min_ram })
         with Scanf.Scan_failure _ | Failure _ | End_of_file ->
           invalid_arg (Printf.sprintf "Replay.Schedule: bad op %S" line))

(** Apply a schedule to a freshly-booted (or just-restored) pristine board.
    Loads go through [load_factory] so the processes snapshot exactly. *)
let apply (k : Instance.t) (t : t) =
  List.iter
    (function
      | Reseed n -> k.Instance.reseed n
      | Load l -> (
        let factory = Programs.resolve l.ld_prog in
        match
          k.Instance.load_factory ~name:l.ld_name ~payload:l.ld_payload ~factory
            ~min_ram:l.ld_min_ram
        with
        | Ok _ -> ()
        | Error e ->
          invalid_arg
            (Printf.sprintf "Replay.Schedule: load %S failed: %s" l.ld_name (Kerror.to_string e))))
    t

(* --- the campaign schedules, as data ---

   These mirror the corresponding harness cell bodies op for op; the
   conformance tests pin the equivalence (same loads, same seeds ⇒ same
   fingerprints as the live campaign cell). *)

(** What {!Fleet.Campaign} runs in one cell: the per-cell reseed, the
    honest witness, then [fuzzers] hostile streams derived from [seed]. *)
let fleet_cell ~seed ~fuzzers ~steps : t =
  Reseed (seed * 0x9E3779B1)
  :: Load { ld_name = "witness"; ld_payload = "w"; ld_prog = "witness"; ld_min_ram = 2048 }
  :: List.init fuzzers (fun i ->
         Load
           {
             ld_name = Printf.sprintf "fuzz%d" i;
             ld_payload = "f";
             ld_prog = Printf.sprintf "fuzz:%d:%d" (seed + (1000 * i)) steps;
             ld_min_ram = 2048;
           })

(** What {!Fuzzcov.Engine} runs per genome: witness + the genome app (the
    crasher replay path boots without a reseed, matching [Engine.replay]). *)
let fuzzcov_cell (g : Fuzzcov.Input.t) : t =
  [
    Load { ld_name = "witness"; ld_payload = "w"; ld_prog = "witness"; ld_min_ram = 2048 };
    Load
      {
        ld_name = "gen";
        ld_payload = "g";
        ld_prog = "genome:" ^ Fuzzcov.Input.encode g;
        ld_min_ram = 2048;
      };
  ]
