(** Register-level model of the ARMv8-M memory protection unit (PMSAv8).

    The successor MPU on Cortex-M23/M33 parts Tock also supports. PMSAv8
    drops PMSAv7's power-of-two sizes and subregions entirely: a region is
    a base/limit pair with 32-byte granularity on both ends —

    - MPU_RBAR: BASE\[31:5\] | SH\[4:3\] | AP\[2:1\] | XN\[0\]
    - MPU_RLAR: LIMIT\[31:5\] | AttrIndx\[3:1\] | EN\[0\]

    covering the inclusive byte range [\[BASE, LIMIT | 0x1F\]]. Unlike
    PMSAv7 there is {e no} priority between regions: an access matching
    more than one enabled region faults (the architecture makes overlap
    UNPREDICTABLE; real cores fault), which this model enforces — so a
    driver bug that overlaps regions is caught by the hardware semantics
    rather than silently resolved. *)

type t

val region_count : int
(** 8 on the Cortex-M33 configurations Tock targets. *)

val granule : int
(** 32 bytes. *)

val granule_bits : int
(** log2 {!granule}: the finest granularity a configuration can express. *)

val decision_granule_bits : t -> int
(** Granularity of the {e active} configuration — minimum alignment of the
    enabled regions' boundaries (>= {!granule_bits}, capped at 4 KiB).
    Handed to the bus decision cache; kept current on register writes. *)

val create : unit -> t

(** {1 Register encoding} *)

val encode_rbar : base:Word32.t -> perms:Perms.t -> Word32.t
(** Requires [base] 32-byte aligned. AP/XN encode the given unprivileged
    permission set with full privileged access, as Tock configures it. *)

val encode_rlar : limit:Word32.t -> enable:bool -> Word32.t
(** [limit] is the address of the {e last} covered byte; requires
    [limit land 0x1F = 0x1F] (i.e. ranges end on a granule boundary). *)

val decode_rbar_base : Word32.t -> Word32.t
val decode_rbar_perms : Word32.t -> Perms.t option
(** Unprivileged view; [None] when AP encodes privileged-only. *)

val decode_rlar_limit : Word32.t -> Word32.t
(** Last covered byte (low 5 bits forced to 1). *)

val decode_rlar_enable : Word32.t -> bool

(** {1 Register file} *)

val write_region : t -> index:int -> rbar:Word32.t -> rasr:Word32.t -> unit
(** (The second operand is the RLAR; named [rasr] for uniformity with the
    v7 driver plumbing.) Raises [Invalid_argument] on malformed values. *)

val clear_region : t -> index:int -> unit
val read_region : t -> index:int -> Word32.t * Word32.t
val set_enabled : t -> bool -> unit
val enabled : t -> bool

val generation : t -> int
(** Configuration generation: bumped by every register write, so the bus
    decision cache can invalidate stale allow decisions wholesale. *)

val set_obs : t -> Obs.Event.sink option -> unit
(** Attach an observability sink; every register write that bumps the
    generation also emits one reconfiguration event. [None] detaches. *)

(** {1 Access semantics} *)

val check_access :
  t -> privileged:bool -> Word32.t -> Perms.access -> (unit, string) result
(** PMSAv8 check: no match → privileged background map only (PRIVDEFENA);
    one match → that region's permissions; multiple matches → fault. *)

val accessible_ranges : t -> Perms.access -> Range.t list

val checker : t -> cpu_privileged:(unit -> bool) -> Memory.checker
(** Adapter for {!Mach.Memory.set_checker}: consults the live CPU privilege
    state per access and exposes generation + 32-byte granularity for the
    bus decision cache. *)

val pp : Format.formatter -> t -> unit

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
