(** A GPIO bank model: pin directions, output latches, input levels and a
    per-pin toggle count (what an LED blink test observes). *)

type direction = Input | Output
type t

val create : int -> t
val pin_count : t -> int
val set_direction : t -> int -> direction -> unit

val write : t -> int -> bool -> unit
(** Drive an output pin; [Invalid_argument] on an input pin. Level changes
    are counted as toggles. *)

val toggle : t -> int -> unit

val read : t -> int -> bool
(** Input pins read the external level; output pins read back the latch. *)

val set_input : t -> int -> bool -> unit
(** Model the external world driving an input pin. *)

val toggles : t -> int -> int
val out_level : t -> int -> bool

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
