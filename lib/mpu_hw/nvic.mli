(** The ARMv7-M NVIC (B3.4) — per-IRQ enable, pending and priority, with
    highest-priority-pending selection. External IRQ [n] is exception
    number [16 + n]. *)

type t

val irq_count : int
val create : unit -> t
val enable : t -> int -> unit
val disable : t -> int -> unit
val is_enabled : t -> int -> bool

val set_pending : t -> int -> unit
(** What a peripheral (or a test) does to raise IRQ [n]. *)

val clear_pending : t -> int -> unit
val is_pending : t -> int -> bool

val set_priority : t -> int -> int -> unit
(** Lower value = more urgent, like hardware. *)

val next_pending : t -> int option
(** The IRQ the core would take next: highest priority among
    pending-and-enabled, lowest number breaking ties. *)

val acknowledge : t -> int option
(** Take (and clear) the next pending IRQ; returns its exception number. *)

val any_pending : t -> bool

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
