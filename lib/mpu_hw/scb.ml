(** The ARMv7-M System Control Block's fault-status registers (B3.2).

    When the MPU denies an access, the hardware latches {e why} and
    {e where} before vectoring to the MemManage handler: the MemManage
    Fault Status Register (the CFSR's low byte) gets DACCVIOL/IACCVIOL and
    MMARVALID, and the MemManage Fault Address Register holds the faulting
    address. Tock's hard-fault path reads exactly these registers to build
    its crash report. Fault-status bits are write-one-to-clear, like the
    hardware. *)

(* MMFSR bit positions within the CFSR: instruction access violation, data
   access violation, and MMFAR-holds-a-valid-address. *)
let iaccviol = 1 lsl 0
let daccviol = 1 lsl 1
let mmarvalid = 1 lsl 7

type t = {
  mutable cfsr : Word32.t;
  mutable mmfar : Word32.t;
  mutable fault_count : int;
}

let create () = { cfsr = 0; mmfar = 0; fault_count = 0 }

(** What the bus does on an MPU-denied access. *)
let record_memfault t ~addr ~access =
  t.fault_count <- t.fault_count + 1;
  (match access with
  | Perms.Execute -> t.cfsr <- t.cfsr lor iaccviol
  | Perms.Read | Perms.Write ->
    t.cfsr <- t.cfsr lor daccviol lor mmarvalid;
    t.mmfar <- addr);
  ()

let cfsr t = t.cfsr
let mmfar t = t.mmfar
let fault_count t = t.fault_count
let mmfar_valid t = t.cfsr land mmarvalid <> 0

(** Write-one-to-clear, as on hardware. *)
let clear_cfsr t bits = t.cfsr <- t.cfsr land lnot bits land Word32.mask

let pp ppf t =
  Format.fprintf ppf "SCB cfsr=%s mmfar=%s faults=%d" (Word32.to_hex t.cfsr)
    (Word32.to_hex t.mmfar) t.fault_count

(* --- whole-state capture (snapshot subsystem) --- *)

type state = { s_cfsr : Word32.t; s_mmfar : Word32.t; s_fault_count : int }

let capture_state t = { s_cfsr = t.cfsr; s_mmfar = t.mmfar; s_fault_count = t.fault_count }

let restore_state t s =
  t.cfsr <- s.s_cfsr;
  t.mmfar <- s.s_mmfar;
  t.fault_count <- s.s_fault_count

let fingerprint t = Fp.int (Fp.int (Fp.int Fp.seed t.cfsr) t.mmfar) t.fault_count
