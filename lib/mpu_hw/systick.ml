(** The ARMv7-M SysTick timer (B3.3).

    A 24-bit down-counter: loaded from SYST_RVR, decremented each clock,
    wrapping to the reload value and setting COUNTFLAG (and, with TICKINT,
    pending the SysTick exception — exception number 15, the one Tock's
    scheduler quantum rides on). Register semantics modeled: reading
    SYST_CSR clears COUNTFLAG; writing SYST_CVR clears the counter and
    COUNTFLAG without triggering the exception. *)

let exception_number = 15
let max_reload = 0xFF_FFFF

type t = {
  mutable enable : bool;
  mutable tickint : bool;
  mutable countflag : bool;
  mutable reload : int;
  mutable current : int;
  mutable pending : bool;  (** SysTick exception pended *)
}

let create () =
  { enable = false; tickint = false; countflag = false; reload = 0; current = 0; pending = false }

let write_rvr t v =
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.reload <- v land max_reload

let write_cvr t _v =
  (* any write clears the counter and COUNTFLAG *)
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.current <- 0;
  t.countflag <- false

let read_cvr t = t.current

let write_csr t v =
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.enable <- v land 1 <> 0;
  t.tickint <- v land 2 <> 0

let read_csr t =
  let v =
    (if t.enable then 1 else 0)
    lor (if t.tickint then 2 else 0)
    lor 4 (* CLKSOURCE: processor clock *)
    lor if t.countflag then 1 lsl 16 else 0
  in
  (* reading the CSR clears COUNTFLAG *)
  t.countflag <- false;
  v

(** Convenience: program and start a countdown of [reload] clocks. *)
let start t ~reload ~tickint =
  write_rvr t reload;
  write_cvr t 0;
  t.current <- reload land max_reload;
  write_csr t (1 lor if tickint then 2 else 0)

(** Advance the clock by [n] cycles. *)
let advance t n =
  if t.enable && n > 0 && t.reload > 0 then begin
    let rec go n =
      if n > 0 then begin
        if t.current = 0 then t.current <- t.reload
        else begin
          t.current <- t.current - 1;
          if t.current = 0 then begin
            t.countflag <- true;
            if t.tickint then t.pending <- true;
            t.current <- t.reload
          end
        end;
        go (n - 1)
      end
    in
    (* fast path for big advances *)
    if n >= t.reload * 2 then begin
      t.countflag <- true;
      if t.tickint then t.pending <- true;
      t.current <- t.reload - (n mod t.reload)
    end
    else go n
  end

let take_pending t =
  let p = t.pending in
  t.pending <- false;
  p

let pending t = t.pending

(* --- whole-state capture (snapshot subsystem) --- *)

type state = {
  s_enable : bool;
  s_tickint : bool;
  s_countflag : bool;
  s_reload : int;
  s_current : int;
  s_pending : bool;
}

let capture_state t =
  {
    s_enable = t.enable;
    s_tickint = t.tickint;
    s_countflag = t.countflag;
    s_reload = t.reload;
    s_current = t.current;
    s_pending = t.pending;
  }

let restore_state t s =
  t.enable <- s.s_enable;
  t.tickint <- s.s_tickint;
  t.countflag <- s.s_countflag;
  t.reload <- s.s_reload;
  t.current <- s.s_current;
  t.pending <- s.s_pending

let fingerprint t =
  let h = Fp.bool (Fp.bool (Fp.bool Fp.seed t.enable) t.tickint) t.countflag in
  Fp.bool (Fp.int (Fp.int h t.reload) t.current) t.pending
