type chip = { chip_name : string; entry_count : int; granularity : int; epmp : bool }

let sifive_e310 = { chip_name = "sifive-e310"; entry_count = 8; granularity = 4; epmp = false }
let earlgrey = { chip_name = "earlgrey"; entry_count = 16; granularity = 4; epmp = true }

let qemu_rv32_virt =
  { chip_name = "qemu-rv32-virt"; entry_count = 16; granularity = 4; epmp = false }

let chips = [ sifive_e310; earlgrey; qemu_rv32_virt ]

type mode = Off | Tor | Na4 | Napot

let mode_code = function Off -> 0 | Tor -> 1 | Na4 -> 2 | Napot -> 3
let mode_of_code = function 0 -> Off | 1 -> Tor | 2 -> Na4 | 3 -> Napot | _ -> assert false

let encode_cfg ~r ~w ~x ~mode ~lock =
  (if r then 1 else 0)
  lor (if w then 2 else 0)
  lor (if x then 4 else 0)
  lor (mode_code mode lsl 3)
  lor if lock then 0x80 else 0

let decode_cfg_r c = c land 1 <> 0
let decode_cfg_w c = c land 2 <> 0
let decode_cfg_x c = c land 4 <> 0
let decode_cfg_mode c = mode_of_code ((c lsr 3) land 3)
let decode_cfg_lock c = c land 0x80 <> 0

let cfg_of_perms p ~mode =
  encode_cfg ~r:(Perms.readable p) ~w:(Perms.writable p) ~x:(Perms.executable p) ~mode
    ~lock:false

let napot_addr ~start ~size =
  if not (Math32.is_pow2 size) || size < 8 then invalid_arg "napot_addr: size";
  if not (Math32.is_aligned start ~align:size) then invalid_arg "napot_addr: alignment";
  (* addr = (start >> 2) | 0b0111..1 with (log2 size - 3) + 1 ones *)
  let ones = Math32.log2 size - 3 in
  (start lsr 2) lor ((1 lsl ones) - 1)

type t = {
  chip : chip;
  cfg : int array;
  addr : Word32.t array;
  ranges : Range.t option array;  (* memoized per-entry decode *)
  mutable mmwp : bool;
  mutable mml : bool;
  mutable generation : int;
  (* model-visible configuration sequence carried by trace events; unlike
     [generation] (the decision-cache key, forward-only across restores)
     it is captured and restored with the registers — see Armv7m_mpu. *)
  mutable cfg_seq : int;
  mutable dgran : int;  (* decision granularity of the active config *)
  mutable obs : Obs.Event.sink option;
}

let max_granule_bits = 12

let create chip =
  {
    chip;
    cfg = Array.make chip.entry_count 0;
    addr = Array.make chip.entry_count 0;
    ranges = Array.make chip.entry_count None;
    mmwp = false;
    mml = false;
    generation = 0;
    cfg_seq = 0;
    dgran = max_granule_bits;
    obs = None;
  }

let set_obs t sink = t.obs <- sink

(* [changed] gates the trace event only: every context switch re-pushes
   the full config, and redundant rewrites would flood the mpu lane.
   Generation still bumps unconditionally for the bus decision cache. *)
let emit_entry_write t index ~changed =
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_region_write { arch = "rv32-pmp"; index; generation = t.cfg_seq })
  end

let chip t = t.chip
let generation t = t.generation

(* PMP decisions can change at NA4 granularity (and TOR bounds are
   pmpaddr << 2, i.e. 4-byte aligned), so 4 bytes is the finest block the
   decision cache may ever treat as uniform. *)
let granule_bits t = Math32.log2 t.chip.granularity
let decision_granule_bits t = t.dgran

let decode_entry_range t i =
  match decode_cfg_mode t.cfg.(i) with
  | Off -> None
  | Na4 -> Some (Range.make ~start:(t.addr.(i) lsl 2 land Word32.mask) ~size:4)
  | Tor ->
    let lo = if i = 0 then 0 else (t.addr.(i - 1) lsl 2) land Word32.mask in
    let hi = (t.addr.(i) lsl 2) land Word32.mask in
    if lo >= hi then Some Range.empty else Some (Range.of_bounds ~lo ~hi)
  | Napot ->
    (* Trailing ones of pmpaddr encode the size. *)
    let a = t.addr.(i) in
    let rec trailing_ones n v = if v land 1 = 1 then trailing_ones (n + 1) (v lsr 1) else n in
    let ones = trailing_ones 0 a in
    let size = 1 lsl (ones + 3) in
    let base = (a land lnot ((1 lsl (ones + 1)) - 1)) lsl 2 land Word32.mask in
    Some (Range.make_checked ~start:base ~size |> Option.value ~default:Range.empty)

(* A pmpaddr write moves the bound of the *next* TOR entry too, so refresh
   the whole (small) table on any register write. Decisions are constant
   between entry boundaries, so the cache granule is the minimum boundary
   alignment of the active entries (capped at 4 KiB). *)
let refresh t =
  let g = ref max_granule_bits in
  for i = 0 to t.chip.entry_count - 1 do
    t.ranges.(i) <- decode_entry_range t i;
    match t.ranges.(i) with
    | Some r when not (Range.is_empty r) ->
      let note a =
        let b = Math32.trailing_zero_bits a in
        if b < !g then g := b
      in
      note (Range.start r);
      note (Range.end_ r)
    | Some _ | None -> ()
  done;
  t.dgran <- max (Math32.log2 t.chip.granularity) (min max_granule_bits !g);
  t.generation <- t.generation + 1

let set_entry t ~index ~cfg ~addr =
  if index < 0 || index >= t.chip.entry_count then invalid_arg "set_entry: index";
  if decode_cfg_lock t.cfg.(index) then invalid_arg "set_entry: entry locked";
  Cycles.tick ~n:(2 * Cycles.mpu_reg_write) Cycles.global;
  let changed = t.cfg.(index) <> cfg land 0xff || t.addr.(index) <> Word32.of_int addr in
  t.cfg.(index) <- cfg land 0xff;
  t.addr.(index) <- Word32.of_int addr;
  refresh t;
  emit_entry_write t index ~changed

let clear_entry t ~index =
  if index < 0 || index >= t.chip.entry_count then invalid_arg "clear_entry: index";
  if decode_cfg_lock t.cfg.(index) then invalid_arg "clear_entry: entry locked";
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let changed = t.cfg.(index) <> 0 in
  t.cfg.(index) <- 0;
  refresh t;
  emit_entry_write t index ~changed

let read_entry t ~index = (t.cfg.(index), t.addr.(index))

let set_mmwp t v =
  if not t.chip.epmp then invalid_arg "set_mmwp: chip has no ePMP";
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let changed = t.mmwp <> v in
  t.mmwp <- v;
  t.generation <- t.generation + 1;
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_enable { arch = "rv32-pmp.mmwp"; on = v; generation = t.cfg_seq })
  end

let set_mml t v =
  if not t.chip.epmp then invalid_arg "set_mml: chip has no ePMP";
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let changed = t.mml <> v in
  t.mml <- v;
  t.generation <- t.generation + 1;
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_enable { arch = "rv32-pmp.mml"; on = v; generation = t.cfg_seq })
  end

let mml t = t.mml
let entry_range t i = t.ranges.(i)

let entry_allows cfg access =
  match access with
  | Perms.Read -> decode_cfg_r cfg
  | Perms.Write -> decode_cfg_w cfg
  | Perms.Execute -> decode_cfg_x cfg

let check_access t ~machine_mode a access =
  let rec find i =
    if i >= t.chip.entry_count then None
    else
      match entry_range t i with
      | Some r when Range.contains r a -> Some i
      | Some _ | None -> find (i + 1)
  in
  match find 0 with
  | Some i ->
    let cfg = t.cfg.(i) in
    let deny reason =
      Error
        (Printf.sprintf "pmp: %s access to %s %s entry %d"
           (match access with Perms.Read -> "read" | Write -> "write" | Execute -> "execute")
           (Word32.to_hex a) reason i)
    in
    if t.mml then begin
      (* Smepmp machine-mode lockdown: locked entries are M-mode-only,
         unlocked entries are U-mode-only. *)
      let locked = decode_cfg_lock cfg in
      if machine_mode && not locked then deny "hits U-mode-only"
      else if (not machine_mode) && locked then deny "hits M-mode-only"
      else if entry_allows cfg access then Ok ()
      else deny "denied by"
    end
    else if machine_mode && not (decode_cfg_lock cfg) then Ok ()
    else if entry_allows cfg access then Ok ()
    else deny "denied by"
  | None ->
    if machine_mode && not t.mmwp then Ok ()
    else Error (Printf.sprintf "pmp: no entry covers %s" (Word32.to_hex a))

let accessible_ranges t access =
  let points = ref [ 0; Word32.mask + 1 ] in
  for i = 0 to t.chip.entry_count - 1 do
    match entry_range t i with
    | Some r when not (Range.is_empty r) -> points := Range.start r :: Range.end_ r :: !points
    | Some _ | None -> ()
  done;
  let points = List.sort_uniq compare !points in
  let rec intervals acc = function
    | lo :: (hi :: _ as rest) ->
      let allowed =
        match check_access t ~machine_mode:false lo access with Ok () -> true | Error _ -> false
      in
      let acc =
        if not allowed then acc
        else
          match acc with
          | r :: tl when Range.end_ r = lo -> Range.of_bounds ~lo:(Range.start r) ~hi :: tl
          | _ -> Range.of_bounds ~lo ~hi :: acc
      in
      intervals acc rest
    | _ -> List.rev acc
  in
  intervals [] points

let checker t ~cpu_machine_mode =
  {
    Memory.check =
      (fun a access -> check_access t ~machine_mode:(cpu_machine_mode ()) a access);
    generation = (fun () -> t.generation);
    privilege = (fun () -> if cpu_machine_mode () then 1 else 0);
    granule_bits = (fun () -> t.dgran);
  }

(* --- whole-state capture (snapshot subsystem) --- *)

type state = {
  s_cfg : int array;
  s_addr : Word32.t array;
  s_mmwp : bool;
  s_mml : bool;
  s_seq : int;
}

let capture_state t =
  {
    s_cfg = Array.copy t.cfg;
    s_addr = Array.copy t.addr;
    s_mmwp = t.mmwp;
    s_mml = t.mml;
    s_seq = t.cfg_seq;
  }

(* Host-side restore: bypasses the lock check deliberately — it reinstates
   a configuration that existed, it is not a CSR write. Generation still
   advances so stale cached decisions never validate. *)
let restore_state t s =
  Array.blit s.s_cfg 0 t.cfg 0 t.chip.entry_count;
  Array.blit s.s_addr 0 t.addr 0 t.chip.entry_count;
  t.mmwp <- s.s_mmwp;
  t.mml <- s.s_mml;
  t.cfg_seq <- s.s_seq;
  refresh t

let fingerprint t =
  let h = Array.fold_left Fp.int Fp.seed t.cfg in
  let h = Array.fold_left Fp.int h t.addr in
  Fp.int (Fp.bool (Fp.bool h t.mmwp) t.mml) t.cfg_seq

let pp ppf t =
  Format.fprintf ppf "@[<v>PMP %s mmwp=%b@," t.chip.chip_name t.mmwp;
  for i = 0 to t.chip.entry_count - 1 do
    match entry_range t i with
    | Some r ->
      Format.fprintf ppf "  entry %2d: %a %s%s%s%s@," i Range.pp r
        (if decode_cfg_r t.cfg.(i) then "r" else "-")
        (if decode_cfg_w t.cfg.(i) then "w" else "-")
        (if decode_cfg_x t.cfg.(i) then "x" else "-")
        (if decode_cfg_lock t.cfg.(i) then " L" else "")
    | None -> ()
  done;
  Format.fprintf ppf "@]"
