(** A GPIO bank model: pin directions, output latches, input levels and a
    per-pin toggle count (what an LED blink test observes). *)

type direction = Input | Output

type pin = {
  mutable dir : direction;
  mutable out_level : bool;
  mutable in_level : bool;
  mutable toggles : int;
}

type t = { pins : pin array }

let create n =
  { pins = Array.init n (fun _ -> { dir = Input; out_level = false; in_level = false; toggles = 0 }) }

let pin_count t = Array.length t.pins

let check t n = if n < 0 || n >= Array.length t.pins then invalid_arg "gpio: pin"

let set_direction t n dir =
  check t n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.pins.(n).dir <- dir

let write t n level =
  check t n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let p = t.pins.(n) in
  if p.dir <> Output then invalid_arg "gpio: write to input pin";
  if p.out_level <> level then p.toggles <- p.toggles + 1;
  p.out_level <- level

let toggle t n =
  check t n;
  let p = t.pins.(n) in
  write t n (not p.out_level)

let read t n =
  check t n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let p = t.pins.(n) in
  match p.dir with Input -> p.in_level | Output -> p.out_level

let set_input t n level =
  check t n;
  t.pins.(n).in_level <- level

let toggles t n =
  check t n;
  t.pins.(n).toggles

let out_level t n =
  check t n;
  t.pins.(n).out_level

(* --- whole-state capture (snapshot subsystem) --- *)

type pin_state = { s_dir : direction; s_out : bool; s_in : bool; s_toggles : int }
type state = pin_state array

let capture_state t =
  Array.map
    (fun p -> { s_dir = p.dir; s_out = p.out_level; s_in = p.in_level; s_toggles = p.toggles })
    t.pins

let restore_state t (s : state) =
  Array.iteri
    (fun i ps ->
      let p = t.pins.(i) in
      p.dir <- ps.s_dir;
      p.out_level <- ps.s_out;
      p.in_level <- ps.s_in;
      p.toggles <- ps.s_toggles)
    s

let fingerprint t =
  Array.fold_left
    (fun h p ->
      Fp.int (Fp.bool (Fp.bool (Fp.bool h (p.dir = Output)) p.out_level) p.in_level) p.toggles)
    Fp.seed t.pins
