(** A simple UART device model.

    Transmit is asynchronous like real hardware: writing a byte while the
    shifter is busy is an overrun (the byte is dropped and an error flag
    set — the behaviour drivers must avoid by polling or buffering).
    [step] advances device time; completed bytes land in the transcript the
    tests read. Receive is push-driven from the test/bench side. *)

type t = {
  cycles_per_byte : int;
  mutable tx_busy_until : int;
  mutable now : int;
  mutable overruns : int;
  transcript : Buffer.t;
  rx_fifo : int Queue.t;
  mutable rx_overflows : int;
  rx_depth : int;
}

let create ?(cycles_per_byte = 8) ?(rx_depth = 16) () =
  {
    cycles_per_byte;
    tx_busy_until = 0;
    now = 0;
    overruns = 0;
    transcript = Buffer.create 128;
    rx_fifo = Queue.create ();
    rx_overflows = 0;
    rx_depth;
  }

let tx_busy t = t.now < t.tx_busy_until

let write_byte t b =
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  if tx_busy t then t.overruns <- t.overruns + 1
  else begin
    Buffer.add_char t.transcript (Char.chr (b land 0xff));
    t.tx_busy_until <- t.now + t.cycles_per_byte
  end

let step t n = t.now <- t.now + n

(* Fault injection: the shifter reports busy for [cycles] more device
   cycles than the last byte actually needs — a transient glitch. Polling
   drivers ([write_byte_blocking]) simply wait it out (the fault is
   masked); fire-and-forget writers see an overrun. *)
let inject_busy t ~cycles = t.tx_busy_until <- max t.tx_busy_until t.now + cycles

(** Busy-wait transmit: what a polling driver does. *)
let write_byte_blocking t b =
  if tx_busy t then step t (t.tx_busy_until - t.now);
  write_byte t b

let write_string_blocking t s = String.iter (fun c -> write_byte_blocking t (Char.code c)) s
let transcript t = Buffer.contents t.transcript
let overruns t = t.overruns

(* --- receive --- *)

let rx_push t b =
  if Queue.length t.rx_fifo >= t.rx_depth then t.rx_overflows <- t.rx_overflows + 1
  else Queue.push (b land 0xff) t.rx_fifo

let rx_available t = not (Queue.is_empty t.rx_fifo)

let read_byte t =
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  if Queue.is_empty t.rx_fifo then None else Some (Queue.pop t.rx_fifo)

let rx_overflows t = t.rx_overflows

(* --- whole-state capture (snapshot subsystem) --- *)

type state = {
  s_tx_busy_until : int;
  s_now : int;
  s_overruns : int;
  s_transcript : string;
  s_rx : int list;
  s_rx_overflows : int;
}

let capture_state t =
  {
    s_tx_busy_until = t.tx_busy_until;
    s_now = t.now;
    s_overruns = t.overruns;
    s_transcript = Buffer.contents t.transcript;
    s_rx = List.of_seq (Queue.to_seq t.rx_fifo);
    s_rx_overflows = t.rx_overflows;
  }

let restore_state t s =
  t.tx_busy_until <- s.s_tx_busy_until;
  t.now <- s.s_now;
  t.overruns <- s.s_overruns;
  Buffer.clear t.transcript;
  Buffer.add_string t.transcript s.s_transcript;
  Queue.clear t.rx_fifo;
  List.iter (fun b -> Queue.push b t.rx_fifo) s.s_rx;
  t.rx_overflows <- s.s_rx_overflows

let fingerprint t =
  let h = Fp.int (Fp.int (Fp.int Fp.seed t.tx_busy_until) t.now) t.overruns in
  let h = Fp.string h (Buffer.contents t.transcript) in
  let h = Queue.fold Fp.int h t.rx_fifo in
  Fp.int h t.rx_overflows
