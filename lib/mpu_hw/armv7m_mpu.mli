(** Register-level model of the ARMv7-M memory protection unit (PMSAv7).

    This is the hardware the Cortex-M MPU drivers program. The model keeps
    the architectural register state — per-region RBAR/RASR pairs plus the
    CTRL register — and implements the PMSAv7 access-check semantics:

    - 8 regions, each a power-of-two-sized, size-aligned block of at least
      32 bytes, described by a base-address register (RBAR) and an
      attribute/size register (RASR);
    - each region of 256 bytes or more is split into 8 equal subregions that
      can be individually disabled through the RASR.SRD field;
    - on overlap, the {e highest-numbered} matching region wins;
    - unprivileged accesses with no matching region fault; privileged
      accesses fall back to the default memory map when CTRL.PRIVDEFENA is
      set (Tock's configuration).

    The constraints encoded here — power-of-two sizes, size alignment, the
    8-subregion split — are exactly the hardware requirements of §3.1 whose
    entanglement with kernel logic produced the grant-overlap bug. *)

type t

val region_count : int
(** 8 on every ARMv7-M part Tock supports. *)

val min_region_size : int
(** 32 bytes. *)

val min_subregion_region_size : int
(** 256 bytes: below this, SRD must be zero (no subregion support). *)

val granule_bits : int
(** log2 of the finest granularity at which an access decision can ever
    change: 5 (32 bytes), because regions are size-aligned powers of two
    >= 32 and subregions are size/8 >= 32. *)

val decision_granule_bits : t -> int
(** The granularity of the {e active} configuration — the minimum
    region/subregion step of the enabled regions (>= {!granule_bits},
    capped at 4 KiB). Handed to the bus decision cache and kept current on
    every register write. *)

val create : unit -> t

(** {1 Register encoding helpers}

    Bit layouts follow the ARMv7-M ARM (B3.5.8 and B3.5.9). *)

val encode_rbar : addr:Word32.t -> region:int -> Word32.t
(** ADDR\[31:5\] | VALID (bit 4) | REGION\[3:0\]. Requires [addr] 32-byte
    aligned and [region < 8]. *)

val encode_rasr :
  enable:bool -> size:int -> srd:int -> perms:Perms.t -> Word32.t
(** [size] is the region size in bytes (power of two, >= 32); encoded as
    SIZE\[5:1\] with region size [2{^SIZE+1}]. [srd] is the 8-bit subregion
    disable mask. Permissions are translated to AP\[26:24\] and XN\[28\]
    for {e unprivileged} access with full privileged access, matching how
    Tock grants itself access while restricting processes. *)

val decode_rbar_addr : Word32.t -> Word32.t
val decode_rbar_region : Word32.t -> int
val decode_rasr_enable : Word32.t -> bool
val decode_rasr_size : Word32.t -> int
(** Region size in bytes. *)

val decode_rasr_srd : Word32.t -> int
val decode_rasr_perms : Word32.t -> Perms.t option
(** Unprivileged permission set implied by AP/XN; [None] when AP encodes
    "no unprivileged access". *)

(** {1 Register file} *)

val write_region : t -> index:int -> rbar:Word32.t -> rasr:Word32.t -> unit
(** Program one region's register pair. Charges
    2 × {!Mach.Cycles.mpu_reg_write} to the global counter, like two MMIO
    stores on hardware. Raises [Invalid_argument] on a malformed pair
    (unaligned base, SRD on a small region) — hardware behaviour is
    UNPREDICTABLE there, so the model refuses. *)

val clear_region : t -> index:int -> unit
(** Disable a region (RASR.ENABLE := 0). *)

val read_region : t -> index:int -> Word32.t * Word32.t

val set_enabled : t -> bool -> unit
(** CTRL.ENABLE, with CTRL.PRIVDEFENA fixed to 1 (Tock's setting). *)

val enabled : t -> bool

val generation : t -> int
(** Configuration generation: bumped by every {!write_region},
    {!clear_region} and {!set_enabled}, so cached access decisions can be
    invalidated wholesale the moment the register file changes. *)

val set_obs : t -> Obs.Event.sink option -> unit
(** Attach an observability sink; every register write that bumps the
    generation also emits one reconfiguration event. [None] detaches. *)

(** {1 Access semantics} *)

val check_access :
  t -> privileged:bool -> Word32.t -> Perms.access -> (unit, string) result
(** The PMSAv7 permission check for a single byte access. *)

val accessible_ranges : t -> Perms.access -> Range.t list
(** All maximal address ranges an {e unprivileged} access of the given kind
    may touch — derived by walking regions and subregions. Used by tests and
    the verifier to compare hardware-enforced layout against the kernel's
    logical view. *)

val checker : t -> cpu_privileged:(unit -> bool) -> Memory.checker
(** Adapter for {!Mach.Memory.set_checker}: consults the live CPU privilege
    state on each access, and exposes the generation counter and 32-byte
    granularity so the bus may cache allow decisions. *)

val pp : Format.formatter -> t -> unit

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
