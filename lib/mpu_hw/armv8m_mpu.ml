let region_count = 8
let granule = 32

(* Base and limit are both 32-byte aligned, so decisions are constant
   within aligned 32-byte blocks — the bus decision-cache granularity. *)
let granule_bits = 5

type t = {
  rbar : Word32.t array;
  rlar : Word32.t array;
  mutable ctrl_enable : bool;
  mutable generation : int;
  (* model-visible configuration sequence carried by trace events; unlike
     [generation] (the decision-cache key, forward-only across restores)
     it is captured and restored with the registers — see Armv7m_mpu. *)
  mutable cfg_seq : int;
  mutable dgran : int;  (* decision granularity of the active config *)
  mutable obs : Obs.Event.sink option;
}

let max_granule_bits = 12

let create () =
  {
    rbar = Array.make region_count 0;
    rlar = Array.make region_count 0;
    ctrl_enable = false;
    generation = 0;
    cfg_seq = 0;
    dgran = max_granule_bits;
    obs = None;
  }

let set_obs t sink = t.obs <- sink

(* [changed] gates the trace event only: every context switch re-pushes
   the full config, and redundant rewrites would flood the mpu lane.
   Generation still bumps unconditionally for the bus decision cache. *)
let emit_region_write t index ~changed =
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_region_write { arch = "armv8m"; index; generation = t.cfg_seq })
  end

(* AP[2:1] (v8 encoding): 00 priv RW only; 01 RW any; 10 priv RO only;
   11 RO any.  XN is bit 0. *)
let ap_of_perms = function
  | Perms.Read_write_execute | Perms.Read_write_only -> 0b01
  | Perms.Read_execute_only | Perms.Read_only -> 0b11
  | Perms.Execute_only -> 0b00

let encode_rbar ~base ~perms =
  if base land (granule - 1) <> 0 then invalid_arg "encode_rbar: unaligned base";
  base
  lor (ap_of_perms perms lsl 1)
  lor if Perms.executable perms then 0 else 1

let encode_rlar ~limit ~enable =
  if limit land (granule - 1) <> granule - 1 then invalid_arg "encode_rlar: unaligned limit";
  limit land 0xFFFF_FFE0 lor if enable then 1 else 0

let decode_rbar_base rbar = rbar land 0xFFFF_FFE0

let decode_rbar_ap rbar = Word32.bits rbar ~hi:2 ~lo:1
let decode_rbar_xn rbar = Word32.bit rbar 0

let decode_rbar_perms rbar =
  let xn = decode_rbar_xn rbar in
  match decode_rbar_ap rbar with
  | 0b01 -> Some (if xn then Perms.Read_write_only else Perms.Read_write_execute)
  | 0b11 -> Some (if xn then Perms.Read_only else Perms.Read_execute_only)
  | _ -> None

let decode_rlar_limit rlar = rlar lor (granule - 1)
let decode_rlar_enable rlar = Word32.bit rlar 0

(* Boundaries of enabled regions are base and limit+1, both 32-byte
   aligned at minimum; decisions are constant between boundaries, so the
   cache granule is the minimum boundary alignment (capped at 4 KiB). *)
let refresh_granule t =
  let g = ref max_granule_bits in
  for i = 0 to region_count - 1 do
    if decode_rlar_enable t.rlar.(i) then begin
      let note a =
        let b = Math32.trailing_zero_bits a in
        if b < !g then g := b
      in
      note (decode_rbar_base t.rbar.(i));
      note (decode_rlar_limit t.rlar.(i) + 1)
    end
  done;
  t.dgran <- max granule_bits (min max_granule_bits !g)

let write_region t ~index ~rbar ~rasr =
  if index < 0 || index >= region_count then invalid_arg "write_region: index";
  let rlar = rasr in
  if decode_rlar_enable rlar && decode_rlar_limit rlar < decode_rbar_base rbar then
    invalid_arg "mpu v8: limit below base";
  Cycles.tick ~n:(2 * Cycles.mpu_reg_write) Cycles.global;
  let changed = t.rbar.(index) <> rbar || t.rlar.(index) <> rlar in
  t.rbar.(index) <- rbar;
  t.rlar.(index) <- rlar;
  refresh_granule t;
  t.generation <- t.generation + 1;
  emit_region_write t index ~changed

let clear_region t ~index =
  if index < 0 || index >= region_count then invalid_arg "clear_region: index";
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let changed = Word32.bit t.rlar.(index) 0 in
  t.rlar.(index) <- Word32.set_bit t.rlar.(index) 0 false;
  refresh_granule t;
  t.generation <- t.generation + 1;
  emit_region_write t index ~changed

let read_region t ~index = (t.rbar.(index), t.rlar.(index))

let set_enabled t v =
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  let changed = t.ctrl_enable <> v in
  t.ctrl_enable <- v;
  t.generation <- t.generation + 1;
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_enable { arch = "armv8m"; on = v; generation = t.cfg_seq })
  end

let enabled t = t.ctrl_enable
let generation t = t.generation
let decision_granule_bits t = t.dgran

let region_matches t i a =
  decode_rlar_enable t.rlar.(i)
  && a >= decode_rbar_base t.rbar.(i)
  && a <= decode_rlar_limit t.rlar.(i)

let perm_allows ~privileged rbar access =
  let xn = decode_rbar_xn rbar in
  let readable, writable =
    if privileged then
      match decode_rbar_ap rbar with
      | 0b00 | 0b01 -> (true, true)
      | 0b10 | 0b11 -> (true, false)
      | _ -> (false, false)
    else
      match decode_rbar_ap rbar with
      | 0b01 -> (true, true)
      | 0b11 -> (true, false)
      | _ -> (false, false)
  in
  match access with
  | Perms.Read -> readable
  | Perms.Write -> writable
  | Perms.Execute -> readable && not xn

let check_access t ~privileged a access =
  if not t.ctrl_enable then Ok ()
  else begin
    (* Allocation-free match walk: this runs per byte on the bus slow path. *)
    let first = ref (-1) and count = ref 0 in
    for i = 0 to region_count - 1 do
      if region_matches t i a then begin
        if !first < 0 then first := i;
        incr count
      end
    done;
    if !count > 1 then
      (* PMSAv8: overlapping enabled regions fault, even for privileged
         access with PRIVDEFENA — overlap is a configuration bug. *)
      Error (Printf.sprintf "mpu v8: overlapping regions at %s" (Word32.to_hex a))
    else if !count = 1 then begin
      let i = !first in
      if perm_allows ~privileged t.rbar.(i) access then Ok ()
      else
        Error
          (Printf.sprintf "mpu v8: %s access to %s denied by region %d"
             (match access with Perms.Read -> "read" | Write -> "write" | Execute -> "execute")
             (Word32.to_hex a) i)
    end
    else if privileged then Ok ()
    else Error (Printf.sprintf "mpu v8: no region covers %s" (Word32.to_hex a))
  end

let accessible_ranges t access =
  let points = ref [ 0; Word32.mask + 1 ] in
  for i = 0 to region_count - 1 do
    if decode_rlar_enable t.rlar.(i) then begin
      points := decode_rbar_base t.rbar.(i) :: (decode_rlar_limit t.rlar.(i) + 1) :: !points
    end
  done;
  let points = List.sort_uniq compare !points in
  let rec intervals acc = function
    | lo :: (hi :: _ as rest) ->
      let allowed =
        match check_access t ~privileged:false lo access with Ok () -> true | Error _ -> false
      in
      let acc =
        if not allowed then acc
        else
          match acc with
          | r :: tl when Range.end_ r = lo -> Range.of_bounds ~lo:(Range.start r) ~hi :: tl
          | _ -> Range.of_bounds ~lo ~hi :: acc
      in
      intervals acc rest
    | _ -> List.rev acc
  in
  intervals [] points

let checker t ~cpu_privileged =
  {
    Memory.check =
      (fun a access -> check_access t ~privileged:(cpu_privileged ()) a access);
    generation = (fun () -> t.generation);
    privilege = (fun () -> if cpu_privileged () then 1 else 0);
    granule_bits = (fun () -> t.dgran);
  }

(* --- whole-state capture (snapshot subsystem) --- *)

type state = {
  s_rbar : Word32.t array;
  s_rlar : Word32.t array;
  s_enable : bool;
  s_seq : int;
}

let capture_state t =
  {
    s_rbar = Array.copy t.rbar;
    s_rlar = Array.copy t.rlar;
    s_enable = t.ctrl_enable;
    s_seq = t.cfg_seq;
  }

let restore_state t s =
  Array.blit s.s_rbar 0 t.rbar 0 region_count;
  Array.blit s.s_rlar 0 t.rlar 0 region_count;
  t.ctrl_enable <- s.s_enable;
  t.cfg_seq <- s.s_seq;
  refresh_granule t;
  t.generation <- t.generation + 1

let fingerprint t =
  let h = Array.fold_left Fp.int Fp.seed t.rbar in
  let h = Array.fold_left Fp.int h t.rlar in
  Fp.int (Fp.bool h t.ctrl_enable) t.cfg_seq

let pp ppf t =
  Format.fprintf ppf "@[<v>MPUv8 ctrl.enable=%b@," t.ctrl_enable;
  for i = 0 to region_count - 1 do
    if decode_rlar_enable t.rlar.(i) then
      Format.fprintf ppf "  region %d: [%a, %a] perms=%s@," i Word32.pp
        (decode_rbar_base t.rbar.(i))
        Word32.pp
        (decode_rlar_limit t.rlar.(i))
        (match decode_rbar_perms t.rbar.(i) with
        | Some p -> Perms.to_string p
        | None -> "priv-only")
  done;
  Format.fprintf ppf "@]"
