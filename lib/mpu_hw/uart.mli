(** A UART device model.

    Transmit is asynchronous like real hardware: writing while the shifter
    is busy is an overrun (byte dropped, error counted) — the behaviour
    polling drivers must avoid. Completed bytes land in a transcript the
    tests read. Receive is a bounded FIFO pushed from the test/bench side. *)

type t

val create : ?cycles_per_byte:int -> ?rx_depth:int -> unit -> t

val tx_busy : t -> bool

val write_byte : t -> int -> unit
(** Raw register write: drops the byte and counts an overrun when busy. *)

val step : t -> int -> unit
(** Advance device time by n cycles. *)

val inject_busy : t -> cycles:int -> unit
(** Fault injection: hold the shifter busy for [cycles] extra device
    cycles. Polling drivers wait the glitch out (masked); raw writers see
    an overrun. *)

val write_byte_blocking : t -> int -> unit
(** Busy-wait transmit — what a polling driver does. *)

val write_string_blocking : t -> string -> unit

val transcript : t -> string
(** Every byte successfully transmitted, in order. *)

val overruns : t -> int

val rx_push : t -> int -> unit
(** Model a received byte arriving on the wire. *)

val rx_available : t -> bool
val read_byte : t -> int option
val rx_overflows : t -> int

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
