(** Register-level model of the RISC-V Physical Memory Protection unit.

    RV32 PMP is the "MPU" of the paper's three RISC-V targets. Each entry is
    an 8-bit configuration ([pmpNcfg]: R, W, X, address-matching mode A, lock
    L) plus an address CSR ([pmpaddrN], holding a physical address shifted
    right by 2). Compared with the Cortex-M MPU, PMP is far more flexible —
    TOR entries give byte-pair granularity with no power-of-two or alignment
    constraints — which is why the paper's [RegionDescriptor] for PMP simply
    reports the exact configured start and size (§3.5).

    Semantics implemented (RISC-V privileged spec §3.7):
    - matching modes OFF, TOR, NA4, NAPOT;
    - the {e lowest-numbered} matching entry decides; an entry matches only
      if it covers {e all} bytes of the access (we check per byte);
    - U-mode accesses with no matching entry are denied;
    - M-mode accesses are bound by an entry only when it is locked; with the
      ePMP machine-mode-whole-protection bit set (OpenTitan's earlgrey),
      M-mode accesses with no match are denied as well. *)

type chip = {
  chip_name : string;
  entry_count : int;
  granularity : int;  (** smallest supported region size, bytes *)
  epmp : bool;  (** implements Smepmp (mseccfg.MMWP model) *)
}

val sifive_e310 : chip
(** SiFive FE310 (HiFive1 rev B): 8 entries. *)

val earlgrey : chip
(** OpenTitan EarlGrey: 16 entries, ePMP. *)

val qemu_rv32_virt : chip
(** QEMU rv32 virt machine: 16 entries. *)

val chips : chip list

(** {1 Configuration byte encoding} *)

type mode = Off | Tor | Na4 | Napot

val encode_cfg : r:bool -> w:bool -> x:bool -> mode:mode -> lock:bool -> int
val decode_cfg_r : int -> bool
val decode_cfg_w : int -> bool
val decode_cfg_x : int -> bool
val decode_cfg_mode : int -> mode
val decode_cfg_lock : int -> bool

val cfg_of_perms : Perms.t -> mode:mode -> int
(** Unlocked entry granting the given user permissions. *)

val napot_addr : start:Word32.t -> size:int -> Word32.t
(** Encode a NAPOT [pmpaddr] value. Requires [size] a power of two >= 8 and
    [start] aligned to [size]. *)

(** {1 Register file} *)

type t

val create : chip -> t
val chip : t -> chip

val set_entry : t -> index:int -> cfg:int -> addr:Word32.t -> unit
(** Program one entry ([pmpaddr] value is the pre-shifted CSR encoding).
    Raises [Invalid_argument] when writing a locked entry — locked entries
    are immutable until reset, which is how ePMP kernels seal their own
    regions. Charges MPU-register-write cycles. *)

val clear_entry : t -> index:int -> unit
val read_entry : t -> index:int -> int * Word32.t

val set_mmwp : t -> bool -> unit
(** ePMP machine-mode whole-protection; [Invalid_argument] on non-ePMP
    chips. *)

val set_mml : t -> bool -> unit
(** Smepmp machine-mode lockdown: with MML set, {e locked} entries apply
    only to machine mode and {e unlocked} entries only to user mode — the
    rule OpenTitan uses to seal the kernel's own regions.
    [Invalid_argument] on non-ePMP chips. *)

val mml : t -> bool

val generation : t -> int
(** Configuration generation: bumped by every pmpcfg/pmpaddr/mseccfg write,
    so the bus decision cache can invalidate stale allow decisions. *)

val set_obs : t -> Obs.Event.sink option -> unit
(** Attach an observability sink; every register write that bumps the
    generation also emits one reconfiguration event. [None] detaches. *)

val granule_bits : t -> int
(** log2 of the chip's PMP granularity (4 bytes on all modeled chips): the
    finest granularity a configuration can express. *)

val decision_granule_bits : t -> int
(** Granularity of the {e active} configuration — minimum boundary
    alignment of the programmed entries (>= {!granule_bits}, capped at
    4 KiB). Handed to the bus decision cache; kept current on writes. *)

val entry_range : t -> int -> Range.t option
(** Decoded address range an entry matches, [None] for OFF entries.
    Memoized: recomputed on register writes, not per access. *)

val check_access :
  t -> machine_mode:bool -> Word32.t -> Perms.access -> (unit, string) result

val accessible_ranges : t -> Perms.access -> Range.t list
(** Maximal ranges a U-mode access of the given kind may touch. *)

val checker : t -> cpu_machine_mode:(unit -> bool) -> Memory.checker
(** Adapter for {!Mach.Memory.set_checker}: consults the live M/U mode per
    access and exposes generation + 4-byte granularity for the bus
    decision cache. *)

val pp : Format.formatter -> t -> unit

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
