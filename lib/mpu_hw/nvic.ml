(** The ARMv7-M Nested Vectored Interrupt Controller (B3.4) — the subset
    Tock's chip crates drive: per-IRQ enable (ISER/ICER), pending
    (ISPR/ICPR), 8-bit priority registers, and highest-priority-pending
    selection. External IRQ [n] maps to exception number [16 + n]. *)

let irq_count = 32

type t = {
  enabled : bool array;
  pended : bool array;
  priority : int array;  (** lower value = higher urgency, like hardware *)
}

let create () =
  { enabled = Array.make irq_count false;
    pended = Array.make irq_count false;
    priority = Array.make irq_count 0 }

let check n = if n < 0 || n >= irq_count then invalid_arg "nvic: irq"

let enable t n =
  check n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.enabled.(n) <- true

let disable t n =
  check n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.enabled.(n) <- false

let is_enabled t n =
  check n;
  t.enabled.(n)

let set_pending t n =
  check n;
  t.pended.(n) <- true

let clear_pending t n =
  check n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.pended.(n) <- false

let is_pending t n =
  check n;
  t.pended.(n)

let set_priority t n p =
  check n;
  Cycles.tick ~n:Cycles.mpu_reg_write Cycles.global;
  t.priority.(n) <- p land 0xff

(** The IRQ the core would take next: the highest-priority (lowest value)
    pending-and-enabled interrupt, lowest number breaking ties. *)
let next_pending t =
  let best = ref None in
  for n = irq_count - 1 downto 0 do
    if t.enabled.(n) && t.pended.(n) then
      match !best with
      | Some b when t.priority.(b) < t.priority.(n) -> ()
      | Some b when t.priority.(b) = t.priority.(n) && b < n -> ()
      | Some _ | None -> best := Some n
  done;
  !best

(** Take (and clear) the next pending IRQ; returns its exception number. *)
let acknowledge t =
  match next_pending t with
  | None -> None
  | Some n ->
    t.pended.(n) <- false;
    Some (16 + n)

let any_pending t = next_pending t <> None

(* --- whole-state capture (snapshot subsystem) --- *)

type state = { s_enabled : bool array; s_pended : bool array; s_priority : int array }

let capture_state t =
  { s_enabled = Array.copy t.enabled; s_pended = Array.copy t.pended;
    s_priority = Array.copy t.priority }

let restore_state t s =
  Array.blit s.s_enabled 0 t.enabled 0 irq_count;
  Array.blit s.s_pended 0 t.pended 0 irq_count;
  Array.blit s.s_priority 0 t.priority 0 irq_count

let fingerprint t =
  let h = Array.fold_left Fp.bool Fp.seed t.enabled in
  let h = Array.fold_left Fp.bool h t.pended in
  Array.fold_left Fp.int h t.priority
