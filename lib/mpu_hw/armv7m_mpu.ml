let region_count = 8
let min_region_size = 32
let min_subregion_region_size = 256

(* Decisions are constant within aligned 32-byte blocks: regions are
   size-aligned powers of two >= 32 bytes, and subregions are size/8 >= 32
   bytes. This is the granularity hint handed to the bus decision cache. *)
let granule_bits = 5

(* Per-region decode of the RBAR/RASR pair, refreshed on every register
   write so the per-access check never re-extracts bit fields. *)
type decoded = {
  d_enabled : bool;
  d_base : Word32.t;
  d_size : int;
  d_srd : int;  (* 0 when the region has no disabled subregions *)
  d_sub_size : int;  (* size / 8; meaningful only when d_srd <> 0 *)
  d_ap : int;
  d_xn : bool;
}

let decoded_disabled =
  { d_enabled = false; d_base = 0; d_size = 0; d_srd = 0; d_sub_size = 1; d_ap = 0; d_xn = false }

type t = {
  rbar : Word32.t array;
  rasr : Word32.t array;
  dec : decoded array;
  mutable ctrl_enable : bool;
  mutable generation : int;
  (* model-visible configuration sequence: counts effective configuration
     changes and is what trace events carry. Unlike [generation] — the bus
     decision-cache key, which only ever moves forward, including across a
     snapshot restore — this is captured and restored with the registers,
     so forked reruns emit identical traces. *)
  mutable cfg_seq : int;
  mutable dgran : int;  (* decision granularity of the active config *)
  mutable obs : Obs.Event.sink option;
}

(* --- RBAR: ADDR[31:5] | VALID[4] | REGION[3:0] --- *)

let encode_rbar ~addr ~region =
  if region < 0 || region >= region_count then invalid_arg "encode_rbar: region";
  if addr land 0x1f <> 0 then invalid_arg "encode_rbar: unaligned base";
  addr lor 0x10 lor region

let decode_rbar_addr rbar = rbar land 0xFFFF_FFE0
let decode_rbar_region rbar = rbar land 0xf

(* --- RASR: XN[28] | AP[26:24] | SRD[15:8] | SIZE[5:1] | ENABLE[0] --- *)

let ap_of_perms = function
  (* Tock's mapping: the kernel always keeps privileged read-write. *)
  | Perms.Read_write_execute | Perms.Read_write_only -> 0b011
  | Perms.Read_execute_only | Perms.Read_only -> 0b010
  | Perms.Execute_only -> 0b001

let xn_of_perms p = not (Perms.executable p)

let encode_rasr ~enable ~size ~srd ~perms =
  if not (Mach.Math32.is_pow2 size) || size < min_region_size then
    invalid_arg "encode_rasr: size";
  if srd < 0 || srd > 0xff then invalid_arg "encode_rasr: srd";
  let size_field = Mach.Math32.log2 size - 1 in
  let w = if enable then 1 else 0 in
  let w = Word32.set_bits w ~hi:5 ~lo:1 size_field in
  let w = Word32.set_bits w ~hi:15 ~lo:8 srd in
  let w = Word32.set_bits w ~hi:26 ~lo:24 (ap_of_perms perms) in
  Word32.set_bit w 28 (xn_of_perms perms)

let decode_rasr_enable rasr = Word32.bit rasr 0
let decode_rasr_size rasr = 1 lsl (Word32.bits rasr ~hi:5 ~lo:1 + 1)
let decode_rasr_srd rasr = Word32.bits rasr ~hi:15 ~lo:8
let decode_rasr_ap rasr = Word32.bits rasr ~hi:26 ~lo:24
let decode_rasr_xn rasr = Word32.bit rasr 28

let decode_rasr_perms rasr =
  let xn = decode_rasr_xn rasr in
  match decode_rasr_ap rasr with
  | 0b011 -> Some (if xn then Perms.Read_write_only else Perms.Read_write_execute)
  | 0b010 | 0b110 | 0b111 -> Some (if xn then Perms.Read_only else Perms.Read_execute_only)
  | _ -> None

let decode_pair ~rbar ~rasr =
  if not (decode_rasr_enable rasr) then decoded_disabled
  else begin
    let size = decode_rasr_size rasr in
    {
      d_enabled = true;
      d_base = decode_rbar_addr rbar;
      d_size = size;
      d_srd = (if size >= min_subregion_region_size then decode_rasr_srd rasr else 0);
      d_sub_size = (if size >= 8 then size / 8 else 1);
      d_ap = decode_rasr_ap rasr;
      d_xn = decode_rasr_xn rasr;
    }
  end

(* Coarsest safe decision-cache granularity for the active register file:
   every region/subregion boundary is aligned to the region's step (the
   subregion size when SRD is in use, the full size otherwise — bases are
   size-aligned), so decisions are constant within blocks of the minimum
   step. Capped at 4 KiB to keep cache indices well distributed. *)
let max_granule_bits = 12

let decision_granule_bits_of dec =
  let g = ref max_granule_bits in
  Array.iter
    (fun d ->
      if d.d_enabled then begin
        let step = if d.d_srd <> 0 then d.d_sub_size else d.d_size in
        let b = Mach.Math32.log2 step in
        if b < !g then g := b
      end)
    dec;
  max granule_bits (min max_granule_bits !g)

let create () =
  {
    rbar = Array.make region_count 0;
    rasr = Array.make region_count 0;
    dec = Array.make region_count decoded_disabled;
    ctrl_enable = false;
    generation = 0;
    cfg_seq = 0;
    dgran = max_granule_bits;
    obs = None;
  }

let set_obs t sink = t.obs <- sink

(* --- register file --- *)

let generation t = t.generation
let decision_granule_bits t = t.dgran

(* [changed] gates the trace event only: redundant rewrites of the same
   register values (every context switch re-pushes the full config) would
   flood the mpu lane without changing the configuration. Generation still
   bumps unconditionally — the bus decision cache keys on it. *)
let refresh t index ~changed =
  t.dec.(index) <- decode_pair ~rbar:t.rbar.(index) ~rasr:t.rasr.(index);
  t.dgran <- decision_granule_bits_of t.dec;
  t.generation <- t.generation + 1;
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_region_write { arch = "armv7m"; index; generation = t.cfg_seq })
  end

let validate ~rbar ~rasr =
  if decode_rasr_enable rasr then begin
    let size = decode_rasr_size rasr in
    let addr = decode_rbar_addr rbar in
    if size < min_region_size then invalid_arg "mpu: region smaller than 32 bytes";
    if not (Mach.Math32.is_aligned addr ~align:size) then
      invalid_arg "mpu: base not aligned to region size";
    if decode_rasr_srd rasr <> 0 && size < min_subregion_region_size then
      invalid_arg "mpu: SRD used on region below 256 bytes"
  end

let write_region t ~index ~rbar ~rasr =
  if index < 0 || index >= region_count then invalid_arg "write_region: index";
  validate ~rbar ~rasr;
  Mach.Cycles.tick ~n:(2 * Mach.Cycles.mpu_reg_write) Mach.Cycles.global;
  let changed = t.rbar.(index) <> rbar || t.rasr.(index) <> rasr in
  t.rbar.(index) <- rbar;
  t.rasr.(index) <- rasr;
  refresh t index ~changed

let clear_region t ~index =
  if index < 0 || index >= region_count then invalid_arg "clear_region: index";
  Mach.Cycles.tick ~n:Mach.Cycles.mpu_reg_write Mach.Cycles.global;
  let changed = Word32.bit t.rasr.(index) 0 in
  t.rasr.(index) <- Word32.set_bit t.rasr.(index) 0 false;
  refresh t index ~changed

let read_region t ~index = (t.rbar.(index), t.rasr.(index))

let set_enabled t v =
  Mach.Cycles.tick ~n:Mach.Cycles.mpu_reg_write Mach.Cycles.global;
  let changed = t.ctrl_enable <> v in
  t.ctrl_enable <- v;
  t.generation <- t.generation + 1;
  if changed then begin
    t.cfg_seq <- t.cfg_seq + 1;
    match t.obs with
    | None -> ()
    | Some emit ->
        emit (Obs.Event.Mpu_enable { arch = "armv7m"; on = v; generation = t.cfg_seq })
  end

let enabled t = t.ctrl_enable

(* --- access semantics --- *)

(* Does region [i] match byte address [a]?  A region matches when the
   address falls inside its power-of-two block and the covering subregion is
   not disabled. *)
let region_matches t i a =
  let d = t.dec.(i) in
  d.d_enabled
  && a - d.d_base >= 0
  && a - d.d_base < d.d_size
  && (d.d_srd = 0 || not (Word32.bit d.d_srd ((a - d.d_base) / d.d_sub_size)))

let perm_allows_dec ~privileged d access =
  let readable, writable =
    if privileged then
      match d.d_ap with
      | 0b001 | 0b010 | 0b011 -> (true, true)
      | 0b101 | 0b110 | 0b111 -> (true, false)
      | _ -> (false, false)
    else
      match d.d_ap with
      | 0b011 -> (true, true)
      | 0b010 | 0b110 | 0b111 -> (true, false)
      | _ -> (false, false)
  in
  match access with
  | Perms.Read -> readable
  | Perms.Write -> writable
  | Perms.Execute -> readable && not d.d_xn

let check_access t ~privileged a access =
  if not t.ctrl_enable then Ok ()
  else begin
    (* Highest-numbered matching region takes priority (PMSAv7). *)
    let rec find i = if i < 0 then None else if region_matches t i a then Some i else find (i - 1) in
    match find (region_count - 1) with
    | Some i ->
      if perm_allows_dec ~privileged t.dec.(i) access then Ok ()
      else
        Error
          (Printf.sprintf "mpu: %s access to %s denied by region %d"
             (match access with Perms.Read -> "read" | Write -> "write" | Execute -> "execute")
             (Word32.to_hex a) i)
    | None ->
      (* PRIVDEFENA = 1: privileged falls through to the default map. *)
      if privileged then Ok ()
      else Error (Printf.sprintf "mpu: no region covers %s" (Word32.to_hex a))
  end

let accessible_ranges t access =
  (* Collect every region/subregion boundary, then evaluate the checker on a
     representative byte of each elementary interval and merge. *)
  let points = ref [ 0; Word32.mask + 1 ] in
  for i = 0 to region_count - 1 do
    let rasr = t.rasr.(i) in
    if decode_rasr_enable rasr then begin
      let base = decode_rbar_addr t.rbar.(i) in
      let size = decode_rasr_size rasr in
      points := base :: (base + size) :: !points;
      if size >= min_subregion_region_size then
        for s = 1 to 7 do
          points := (base + (s * size / 8)) :: !points
        done
    end
  done;
  let points = List.sort_uniq compare !points in
  let rec intervals acc = function
    | lo :: (hi :: _ as rest) ->
      let allowed =
        match check_access t ~privileged:false lo access with Ok () -> true | Error _ -> false
      in
      let acc =
        if not allowed then acc
        else
          match acc with
          | r :: tl when Range.end_ r = lo -> Range.of_bounds ~lo:(Range.start r) ~hi :: tl
          | _ -> Range.of_bounds ~lo ~hi :: acc
      in
      intervals acc rest
    | _ -> List.rev acc
  in
  intervals [] points

let checker t ~cpu_privileged =
  {
    Memory.check =
      (fun a access -> check_access t ~privileged:(cpu_privileged ()) a access);
    generation = (fun () -> t.generation);
    privilege = (fun () -> if cpu_privileged () then 1 else 0);
    granule_bits = (fun () -> t.dgran);
  }

(* --- whole-state capture (snapshot subsystem) --- *)

type state = {
  s_rbar : Word32.t array;
  s_rasr : Word32.t array;
  s_enable : bool;
  s_seq : int;
}

let capture_state t =
  {
    s_rbar = Array.copy t.rbar;
    s_rasr = Array.copy t.rasr;
    s_enable = t.ctrl_enable;
    s_seq = t.cfg_seq;
  }

(* A host-side restore, not a modeled register write: no cycle charge, no
   trace events, but the generation must advance so cached bus decisions
   taken under the outgoing configuration never validate. *)
let restore_state t s =
  Array.blit s.s_rbar 0 t.rbar 0 region_count;
  Array.blit s.s_rasr 0 t.rasr 0 region_count;
  t.ctrl_enable <- s.s_enable;
  t.cfg_seq <- s.s_seq;
  for i = 0 to region_count - 1 do
    t.dec.(i) <- decode_pair ~rbar:t.rbar.(i) ~rasr:t.rasr.(i)
  done;
  t.dgran <- decision_granule_bits_of t.dec;
  t.generation <- t.generation + 1

let fingerprint t =
  let h = Array.fold_left Mach.Fp.int Mach.Fp.seed t.rbar in
  let h = Array.fold_left Mach.Fp.int h t.rasr in
  Mach.Fp.int (Mach.Fp.bool h t.ctrl_enable) t.cfg_seq

let pp ppf t =
  Format.fprintf ppf "@[<v>MPU ctrl.enable=%b@," t.ctrl_enable;
  for i = 0 to region_count - 1 do
    let rasr = t.rasr.(i) in
    if decode_rasr_enable rasr then
      Format.fprintf ppf "  region %d: base=%a size=%d srd=%02x perms=%s@," i Word32.pp
        (decode_rbar_addr t.rbar.(i))
        (decode_rasr_size rasr) (decode_rasr_srd rasr)
        (match decode_rasr_perms rasr with Some p -> Perms.to_string p | None -> "priv-only")
  done;
  Format.fprintf ppf "@]"
