(** The ARMv7-M SysTick timer (B3.3).

    A 24-bit down-counter loaded from SYST_RVR, wrapping to the reload value
    and setting COUNTFLAG (and, with TICKINT, pending exception 15 — the one
    Tock's scheduling quantum rides on). Register semantics modeled: reading
    SYST_CSR clears COUNTFLAG; any write to SYST_CVR clears the counter and
    COUNTFLAG without triggering the exception. *)

type t

val exception_number : int
(** 15. *)

val max_reload : int
(** 2^24 - 1. *)

val create : unit -> t
val write_rvr : t -> int -> unit
val write_cvr : t -> int -> unit
val read_cvr : t -> int
val write_csr : t -> int -> unit

val read_csr : t -> int
(** ENABLE | TICKINT | CLKSOURCE | COUNTFLAG<<16; clears COUNTFLAG. *)

val start : t -> reload:int -> tickint:bool -> unit
(** Program and start a countdown. *)

val advance : t -> int -> unit
(** Advance the clock by n cycles. *)

val take_pending : t -> bool
(** Consume the pended SysTick exception, if any. *)

val pending : t -> bool

(** {1 Whole-state capture (snapshot subsystem)} *)

type state

val capture_state : t -> state
val restore_state : t -> state -> unit

val fingerprint : t -> int64
(** FNV-1a over the architecturally visible state (never host-side caches
    or generation counters). *)
