(** Fuzz inputs as genomes.

    {!Apps.Fuzz.random_script} derives a whole syscall stream from one
    seed — a single gene, useless for evolution because any mutation
    rewrites the entire schedule. Here an input is an {e op array}: each
    op decides one step of the hostile app (which syscall, which
    arguments), plus a tick budget bounding the scheduler run (the
    interrupt schedule). Mutating one op perturbs one step and leaves the
    prefix — and therefore the coverage it earned — intact, which is what
    makes hill-climbing on the coverage bitmap work.

    Everything is deterministic: {!script} derives all per-step detail
    from the op value itself (a step-local [Random.State], seeded by the
    op), and {!fresh}/{!mutate} draw only from the caller's RNG, so a
    candidate is a pure function of (campaign seed, generation, slot) and
    the corpus it descends from. *)

open Apps.App_dsl

type t = {
  in_ticks : int;  (** scheduler budget: the interrupt-schedule gene *)
  in_ops : int array;  (** one op per hostile-app step *)
}

let min_ticks = 200
let op_range = 0x3FFF_FFFF

(* --- wire encoding: one token, no whitespace ---

   ["<ticks>:<op>,<op>,..."] — store records and replay bundles embed
   inputs in space-separated lines, so the encoding must be one token. *)

let encode g =
  Printf.sprintf "%d:%s" g.in_ticks
    (String.concat "," (List.map string_of_int (Array.to_list g.in_ops)))

let decode s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    try
      let ticks = int_of_string (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let ops =
        if rest = "" then [||]
        else Array.of_list (List.map int_of_string (String.split_on_char ',' rest))
      in
      if ticks < 1 || Array.length ops = 0 then None else Some { in_ticks = ticks; in_ops = ops }
    with Failure _ -> None)

(* --- generation and mutation --- *)

let fresh ~rng ~steps_max ~ticks_max =
  {
    in_ticks = min_ticks + Random.State.int rng (max 1 (ticks_max - min_ticks + 1));
    in_ops =
      Array.init
        (1 + Random.State.int rng (max 1 steps_max))
        (fun _ -> Random.State.int rng op_range);
  }

(* One of the classic AFL havoc moves, 1–4 of them per child. Structural
   moves (insert/delete/splice/double) mutate the syscall schedule; the
   ticks nudge and scale mutate the interrupt schedule; point/xor moves
   mutate one step's opcode or arguments. The doubling moves matter
   because the coverage bitmap buckets hit counts into AFL's power-of-two
   classes: a surviving schedule that runs twice as long jumps a whole
   count class in one hop, which insert-one-op hill climbing cannot. *)
let mutate ~rng ~steps_max ~ticks_max parent =
  let g = ref parent in
  let len () = Array.length !g.in_ops in
  let nmut = 1 + Random.State.int rng 4 in
  for _ = 1 to nmut do
    match Random.State.int rng 8 with
    | 0 ->
      (* point replace *)
      let ops = Array.copy !g.in_ops in
      ops.(Random.State.int rng (len ())) <- Random.State.int rng op_range;
      g := { !g with in_ops = ops }
    | 1 when len () < steps_max ->
      (* insert *)
      let p = Random.State.int rng (len () + 1) in
      let ops =
        Array.init (len () + 1) (fun i ->
            if i < p then !g.in_ops.(i)
            else if i = p then Random.State.int rng op_range
            else !g.in_ops.(i - 1))
      in
      g := { !g with in_ops = ops }
    | 2 when len () > 1 ->
      (* delete *)
      let p = Random.State.int rng (len ()) in
      let ops =
        Array.init (len () - 1) (fun i -> if i < p then !g.in_ops.(i) else !g.in_ops.(i + 1))
      in
      g := { !g with in_ops = ops }
    | 3 ->
      (* splice: duplicate a short slice elsewhere in the schedule *)
      let n = min (1 + Random.State.int rng 8) (len ()) in
      let src = Random.State.int rng (len () - n + 1) in
      let dst = Random.State.int rng (len () + 1) in
      let total = min steps_max (len () + n) in
      let keep = total - n in
      if keep >= 0 && n > 0 then begin
        let dst = min dst keep in
        let ops =
          Array.init total (fun i ->
              if i < dst then !g.in_ops.(i)
              else if i < dst + n then !g.in_ops.(src + i - dst)
              else !g.in_ops.(i - n))
        in
        g := { !g with in_ops = ops }
      end
    | 4 ->
      (* interrupt-schedule nudge *)
      let d = Random.State.int rng 801 - 400 in
      let t = max min_ticks (min ticks_max (!g.in_ticks + d)) in
      g := { !g with in_ticks = t }
    | 5 when len () * 2 <= steps_max ->
      (* double the syscall schedule: count-class ladder hop *)
      g := { !g with in_ops = Array.append !g.in_ops !g.in_ops }
    | 6 ->
      (* scale the interrupt schedule by 2 or 1/2: same ladder hop on
         preemption counts *)
      let t = if Random.State.bool rng then !g.in_ticks * 2 else !g.in_ticks / 2 in
      g := { !g with in_ticks = max min_ticks (min ticks_max t) }
    | _ ->
      (* low-bit xor: same step class, different arguments *)
      let ops = Array.copy !g.in_ops in
      let p = Random.State.int rng (len ()) in
      ops.(p) <- ops.(p) lxor (1 lsl Random.State.int rng 24);
      g := { !g with in_ops = ops }
  done;
  !g

(* --- the genome-driven hostile app ---

   The step mix mirrors Apps.Fuzz.random_script (wild brk/sbrk, allow of
   unowned buffers, random commands, memop probes, in-bounds traffic,
   out-of-sandbox accesses) plus an explicit yield step, so upcall
   delivery and park/preempt interleavings are part of the searchable
   schedule space. The op's low two decimal digits pick the step class;
   a step-local RNG seeded by the whole op supplies the arguments. *)
let script (g : t) : int Apps.App_dsl.t =
  let* ms = memory_start in
  let* ab = memory_end in
  let nops = Array.length g.in_ops in
  let rec go i =
    if i >= nops then return 0
    else begin
      let op = g.in_ops.(i) in
      let rng = Random.State.make [| op; 0xF0C5 |] in
      let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
      let in_bounds () = ms + Random.State.int rng (max (ab - ms - 4) 4) in
      let wild_word () =
        pick
          [
            0;
            Random.State.int rng 0x1000;
            ms - Random.State.int rng 4096;
            ms + Random.State.int rng 16384;
            ab + Random.State.int rng 8192;
            Word32.max_value - Random.State.int rng 64;
          ]
      in
      let step =
        match op mod 100 with
        | c when c < 12 ->
          let* _ =
            if Random.State.bool rng then brk (wild_word ())
            else sbrk (Random.State.int rng 8192 - 4096)
          in
          return ()
        | c when c < 28 ->
          let addr = if Random.State.bool rng then in_bounds () else wild_word () in
          let len = Random.State.int rng 512 in
          let* _ =
            if Random.State.bool rng then allow_rw ~driver:(Random.State.int rng 12) ~addr ~len
            else allow_ro ~driver:(Random.State.int rng 12) ~addr ~len
          in
          return ()
        | c when c < 48 ->
          let* _ =
            command
              ~driver:(Random.State.int rng 12)
              ~cmd:(Random.State.int rng 6)
              ~arg1:(Random.State.int rng 0x10000)
              ~arg2:(Random.State.int rng 0x10000)
              ()
          in
          return ()
        | c when c < 58 ->
          let* _ =
            subscribe ~driver:(Random.State.int rng 12) ~upcall_id:(Random.State.int rng 4)
          in
          return ()
        | c when c < 66 ->
          let* _ = memop ~op:(Random.State.int rng 8) ~arg:(wild_word ()) () in
          return ()
        | c when c < 74 ->
          let* _ = yield in
          return ()
        | c when c < 96 ->
          (* mostly in-bounds traffic, but 1 in 4 goes wild: long-surviving
             schedules are exponentially rare for a fresh draw, yet a parent
             that survives its ops survives them deterministically — so the
             doubling mutation inherits survival, and high syscall-count
             classes are reachable by evolution but not by blind sampling *)
          let a = if Random.State.int rng 4 = 0 then wild_word () else in_bounds () in
          if Random.State.bool rng then
            let* _ = store8 a (Random.State.int rng 256) in
            return ()
          else
            let* _ = load8 a in
            return ()
        | _ ->
          let a = pick (Apps.Fuzz.hostile_addresses ~ms ~ab) in
          let* _ = load8 a in
          return ()
      in
      let* () = step in
      go (i + 1)
    end
  in
  go 0
