(** The coverage-guided evolutionary fuzzing campaign.

    The AFL recipe over the whole-machine model: fork every input from a
    pristine post-boot image ({!Ticktock.Snapshot.Registry}), run it with
    the icache coverage map on ({!Fluxarm.Icache.set_coverage}), keep
    inputs that light buckets no earlier input lit, and breed the next
    generation from the keepers. Everything the campaign externalizes —
    corpus, report, store bytes — is a pure function of the spec:

    - {e across jobs}: a generation's candidates are derived {e before}
      the generation runs, from (seed, generation, slot) and the corpus;
      the pool evaluates them in any order but the results array is
      index-ordered, and corpus/virgin-map updates are merged strictly in
      slot order after the barrier;
    - {e across kill/resume}: the store (TICKFLT framing, reused from
      {!Fleet.Store}) holds one record per completed generation carrying
      exactly the inputs of the merge fold — accepted entries, newly lit
      bits, new crashers — so resume replays the fold and continues
      bit-identically;
    - {e across superblock on/off and cov on/off}: the coverage hooks
      note the same (block, edge) stream from the linked and unlinked
      engines, and are host-side observation — model-visible behaviour is
      byte-identical with coverage on or off (docs/FUZZING.md).

    Crashers are triaged against {!Verify.Taxonomy} and emitted as
    replayable (board, input) bundles. *)

open Ticktock

(* --- boards ---

   Assembled like the fleet's: standard capsule set, devices spliced into
   the snapshot target, RNG reseed hook wired. The upstream/patched Tock
   baselines are schedulable too — that is where the fuzzer has real
   crashes to find (the §2.2 wild-brk panic); note only the [-mc] board
   executes its switch path through [Mc.run], so only it populates the
   coverage map — on every other board the campaign degrades to blind
   fuzzing over the same input space. *)
let board_names =
  [ "ticktock-arm-mc"; "ticktock-arm"; "ticktock-arm-v8"; "tock-arm-upstream";
    "tock-arm-patched" ]

(* Contracts are armed exactly where the verified kernels claim them. *)
let contracts_for board = String.length board >= 8 && String.sub board 0 8 = "ticktock"

let make_board name =
  if not (List.mem name board_names) then
    invalid_arg
      (Printf.sprintf "Fuzzcov: unknown board %S (one of: %s)" name
         (String.concat ", " board_names));
  Capsules.Std_board.make ~what:"Fuzzcov" name

(* --- spec --- *)

type spec = {
  fc_board : string;
  fc_seed : int;  (** campaign master seed *)
  fc_pop : int;  (** candidates per generation *)
  fc_gens : int;
  fc_steps_max : int;  (** genome length cap *)
  fc_ticks_max : int;
  fc_guided : bool;  (** [false]: the blind baseline — same engine, no corpus *)
}

let default_spec =
  {
    fc_board = "ticktock-arm-mc";
    fc_seed = 1;
    fc_pop = 16;
    fc_gens = 24;
    fc_steps_max = 256;
    fc_ticks_max = 8000;
    fc_guided = true;
  }

let no_spaces what s =
  if String.contains s ' ' || String.contains s '\n' then
    invalid_arg (Printf.sprintf "Fuzzcov: %s %S must not contain whitespace" what s)

let spec_key s =
  no_spaces "board name" s.fc_board;
  Printf.sprintf "fuzzcov-v1 board=%s seed=%d pop=%d gens=%d steps=%d ticks=%d mode=%s"
    s.fc_board s.fc_seed s.fc_pop s.fc_gens s.fc_steps_max s.fc_ticks_max
    (if s.fc_guided then "guided" else "blind")

(* --- corpus entries and crashers --- *)

type entry = {
  en_id : int;  (** corpus sequence number (acceptance order) *)
  en_gen : int;  (** generation that produced it *)
  en_new : int;  (** buckets it lit first (0: kept as the depth champion) *)
  en_hits : int;  (** exact (block + edge) hit total — the depth signal *)
  en_input : Input.t;
  en_cov : (int * int) array;  (** its sparse classified bitmap *)
}

type crasher = {
  cr_class : Verify.Taxonomy.cls;
  cr_site : string;
  cr_detail : string;
  cr_gen : int;
  cr_input : Input.t;
}

(* --- one input, one forked board --- *)

(* What a pool cell ships back: the input's sparse classified bitmap and
   its crash, if any. Plain values — merging happens on the caller. *)
type exec = {
  ex_cov : (int * int) array;
  ex_hits : int;  (** exact block + edge hit total: how deep the schedule ran *)
  ex_crash : (Verify.Taxonomy.cls * string * string) option;
}

(** Run one genome against an already-booted (or just-restored) instance:
    the honest witness next to the genome app, coverage map reset first so
    the bitmap read afterwards is a pure function of this input. *)
let run_input (k : Instance.t) (g : Input.t) =
  (match k.Instance.icache () with
  | Some ic ->
    Fluxarm.Icache.set_coverage ic true;
    Fluxarm.Icache.cov_reset ic
  | None -> ());
  let load name payload program =
    k.Instance.load ~name ~payload ~program ~min_ram:2048 ~grant_reserve:1024
      ~heap_headroom:2048
    |> Result.get_ok
  in
  let witness = load "witness" "w" (Apps.App_dsl.to_program Apps.Fuzz.witness_script) in
  let gen_pid = load "gen" "g" (Apps.App_dsl.to_program (Input.script g)) in
  let crash =
    match k.Instance.run ~max_ticks:g.Input.in_ticks with
    | () ->
      (* no exception escaped: the only remaining crash class is silent
         witness corruption — an isolation breach no contract caught *)
      let witness_bad =
        k.Instance.proc_faulted witness
        || (k.Instance.proc_exit witness = Some 0
           && k.Instance.proc_output witness <> Some "true")
      in
      let isolation_bad =
        not (List.for_all (fun pid -> k.Instance.proc_isolation_ok pid) [ witness; gen_pid ])
      in
      if witness_bad || isolation_bad then
        Some
          ( Verify.Taxonomy.Witness_corruption,
            "witness",
            if isolation_bad then "hardware view escaped the logical view"
            else "witness output corrupted" )
      else None
    | exception Tock_cortexm_mpu.Kernel_panic msg ->
      Some (Verify.Taxonomy.Kernel_panic, "kernel", msg)
    | exception Verify.Violation.Violation v ->
      (Some (Verify.Taxonomy.class_of_site v.Verify.Violation.site, v.Verify.Violation.site,
             v.Verify.Violation.detail))
  in
  let cov, hits =
    match k.Instance.icache () with
    | Some ic ->
      let cc = Fluxarm.Icache.cov_counts ic in
      (Fluxarm.Icache.cov_classified ic, cc.cc_block_hits + cc.cc_edge_hits)
    | None -> ([||], 0)
  in
  { ex_cov = cov; ex_hits = hits; ex_crash = crash }

(* --- the virgin map ---

   slot -> bitmask of AFL count classes already seen. A candidate's
   novelty is the number of (slot, class) pairs whose class bit is not
   yet in the mask. *)

type virgin = (int, int) Hashtbl.t

let novelty (v : virgin) cov =
  Array.fold_left
    (fun acc (slot, cls) ->
      let seen = Option.value ~default:0 (Hashtbl.find_opt v slot) in
      if cls land seen = 0 then acc + 1 else acc)
    0 cov

(* Merge a bitmap into the virgin map, returning the delta actually new,
   in bitmap (ascending slot) order — what the store records. *)
let merge (v : virgin) cov =
  let delta = ref [] in
  Array.iter
    (fun (slot, cls) ->
      let seen = Option.value ~default:0 (Hashtbl.find_opt v slot) in
      if cls land seen = 0 then begin
        Hashtbl.replace v slot (seen lor cls);
        delta := (slot, cls) :: !delta
      end)
    cov;
  List.rev !delta

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* (block slots, edge slots, total (slot, class) buckets) lit so far. The
   bucket count is the AFL-style "map coverage": a slot lit at a new hit
   count class is a discovery even when the slot itself is old — it is
   what separates an input that context-switches 128 times from one that
   switches once, and the only axis with room to climb on a kernel whose
   handler code is small. *)
let lit (v : virgin) =
  Hashtbl.fold
    (fun slot mask (blocks, edges, bits) ->
      let bits = bits + popcount mask in
      if slot < Fluxarm.Icache.cov_slots then (blocks + 1, edges, bits)
      else (blocks, edges + 1, bits))
    v (0, 0, 0)

(* --- candidate derivation: pure in (spec, corpus, gen, slot) --- *)

let champion (corpus : entry array) =
  Array.fold_left
    (fun best e ->
      match best with
      | None -> Some e
      | Some b -> if e.en_hits > b.en_hits then Some e else Some b)
    None corpus

let candidate spec ~(corpus : entry array) ~gen ~slot =
  let rng = Random.State.make [| spec.fc_seed; gen; slot; 0xFC0C |] in
  let fresh () =
    Input.fresh ~rng ~steps_max:spec.fc_steps_max ~ticks_max:spec.fc_ticks_max
  in
  if (not spec.fc_guided) || Array.length corpus = 0 then fresh ()
  else begin
    let roll = Random.State.int rng 100 in
    if roll < 10 then fresh () (* keep exploring from scratch *)
    else
      (* AFL-style scheduling: a third of the children descend from the
         depth champion (the ladder the doubling moves climb), a third
         from the last few accepted entries (they carry the rarest
         buckets), the rest from anywhere *)
      let n = Array.length corpus in
      let parent =
        if roll < 40 then Option.get (champion corpus)
        else if roll < 70 then corpus.(n - 1 - Random.State.int rng (min 4 n))
        else corpus.(Random.State.int rng n)
      in
      Input.mutate ~rng ~steps_max:spec.fc_steps_max ~ticks_max:spec.fc_ticks_max
        parent.en_input
  end

(* --- corpus minimization ---

   Greedy set cover over the corpus's own buckets: take entries by
   descending bitmap size (ties by id), keep one only if it still
   contributes a bucket no keeper covers. Because acceptance guarantees
   novelty against the corpus {e so far}, id-order greedy would keep
   everything; size-order lets rich later entries subsume their
   ancestors. The current depth champion (max [en_hits], lowest id on
   ties) is always kept even when its buckets are subsumed — dropping it
   would cut the count-class ladder the doubling mutation climbs.
   Survivors are re-sorted by id, so parent selection stays stable. Runs
   every [minimize_every] generations and is part of the deterministic
   fold — resume replays it bit-identically. *)

let minimize_every = 8

let minimize (corpus : entry array) =
  let by_size = Array.copy corpus in
  Array.sort
    (fun a b ->
      match compare (Array.length b.en_cov) (Array.length a.en_cov) with
      | 0 -> compare a.en_id b.en_id
      | c -> c)
    by_size;
  let covered : virgin = Hashtbl.create 1024 in
  let keep =
    Array.to_list by_size
    |> List.filter (fun e ->
           let n = novelty covered e.en_cov in
           if n > 0 then ignore (merge covered e.en_cov);
           n > 0)
  in
  let keep =
    match champion corpus with
    | Some ch when not (List.exists (fun e -> e.en_id = ch.en_id) keep) -> ch :: keep
    | _ -> keep
  in
  let keep = List.sort (fun a b -> compare a.en_id b.en_id) keep in
  Array.of_list keep

(* --- per-generation summary: the store record and the fold input --- *)

type gen_summary = {
  gs_gen : int;
  gs_execs : int;  (** cumulative execs after this generation *)
  gs_edges : int;  (** edge slots lit after this generation *)
  gs_blocks : int;
  gs_bits : int;  (** (slot, count class) buckets lit — the guidance signal *)
  gs_corpus : int;  (** corpus size after this generation (post-minimize) *)
  gs_crashers : int;  (** cumulative distinct crashers *)
  gs_new_bits : (int * int) list;  (** delta merged into the virgin map, in order *)
  gs_entries : entry list;  (** accepted this generation, in order *)
  gs_new_crashers : crasher list;
}

let encode_pairs = function
  | [] -> "-"
  | ps ->
    String.concat "," (List.map (fun (s, c) -> Printf.sprintf "%d:%d" s c) ps)

let decode_pairs s =
  if s = "-" then Some []
  else
    try
      Some
        (List.map
           (fun tok -> Scanf.sscanf tok "%d:%d" (fun a b -> (a, b)))
           (String.split_on_char ',' s))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let encode_gen gs =
  let b = Buffer.create 1024 in
  Printf.bprintf b "G %d %d %d %d %d %d %d\n" gs.gs_gen gs.gs_execs gs.gs_edges gs.gs_blocks
    gs.gs_bits gs.gs_corpus gs.gs_crashers;
  Printf.bprintf b "N %s\n" (encode_pairs gs.gs_new_bits);
  List.iter
    (fun e ->
      Printf.bprintf b "A %d %d %d %d %s %s\n" e.en_id e.en_gen e.en_new e.en_hits
        (Input.encode e.en_input)
        (encode_pairs (Array.to_list e.en_cov)))
    gs.gs_entries;
  List.iter
    (fun c ->
      Printf.bprintf b "X %s %d %S %S %s\n" (Verify.Taxonomy.name c.cr_class) c.cr_gen
        c.cr_site c.cr_detail (Input.encode c.cr_input))
    gs.gs_new_crashers;
  Buffer.contents b

let decode_gen data =
  let lines = String.split_on_char '\n' data |> List.filter (fun l -> l <> "") in
  try
    let gs =
      match lines with
      | first :: _ ->
        Scanf.sscanf first "G %d %d %d %d %d %d %d" (fun g e ed bl bi co cr ->
            {
              gs_gen = g;
              gs_execs = e;
              gs_edges = ed;
              gs_blocks = bl;
              gs_bits = bi;
              gs_corpus = co;
              gs_crashers = cr;
              gs_new_bits = [];
              gs_entries = [];
              gs_new_crashers = [];
            })
      | [] -> raise Exit
    in
    let gs =
      List.fold_left
        (fun gs line ->
          match line.[0] with
          | 'G' -> gs
          | 'N' ->
            let pairs =
              match decode_pairs (String.sub line 2 (String.length line - 2)) with
              | Some p -> p
              | None -> raise Exit
            in
            { gs with gs_new_bits = pairs }
          | 'A' ->
            Scanf.sscanf line "A %d %d %d %d %s %s" (fun id gen nw hits inp cov ->
                match (Input.decode inp, decode_pairs cov) with
                | Some input, Some cov ->
                  {
                    gs with
                    gs_entries =
                      gs.gs_entries
                      @ [
                          {
                            en_id = id;
                            en_gen = gen;
                            en_new = nw;
                            en_hits = hits;
                            en_input = input;
                            en_cov = Array.of_list cov;
                          };
                        ];
                  }
                | _ -> raise Exit)
          | 'X' ->
            Scanf.sscanf line "X %s %d %S %S %s" (fun cls gen site detail inp ->
                match (Verify.Taxonomy.of_name cls, Input.decode inp) with
                | Some cr_class, Some cr_input ->
                  {
                    gs with
                    gs_new_crashers =
                      gs.gs_new_crashers
                      @ [ { cr_class; cr_site = site; cr_detail = detail; cr_gen = gen; cr_input } ];
                  }
                | _ -> raise Exit)
          | _ -> raise Exit)
        gs (List.tl lines)
    in
    Some gs
  with Scanf.Scan_failure _ | Failure _ | End_of_file | Exit | Invalid_argument _ -> None

(* --- the deterministic report: rendered only from gen summaries --- *)

let render spec (gens : gen_summary array) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# ticktock fuzzcov campaign\n";
  pf "# %s\n\n" (spec_key spec);
  pf "%5s %8s %7s %7s %8s %6s %9s\n" "gen" "execs" "corpus" "edges" "blocks" "bits" "crashers";
  Array.iter
    (fun gs ->
      pf "%5d %8d %7d %7d %8d %6d %9d\n" gs.gs_gen gs.gs_execs gs.gs_corpus gs.gs_edges
        gs.gs_blocks gs.gs_bits gs.gs_crashers)
    gens;
  let entries = Array.to_list gens |> List.concat_map (fun gs -> gs.gs_entries) in
  let final_corpus =
    (* replay the fold's minimization points to list the surviving corpus *)
    Array.to_list
      (Array.fold_left
         (fun corpus gs ->
           let corpus = Array.append corpus (Array.of_list gs.gs_entries) in
           if (gs.gs_gen + 1) mod minimize_every = 0 then minimize corpus else corpus)
         [||] gens)
  in
  let crashers = Array.to_list gens |> List.concat_map (fun gs -> gs.gs_new_crashers) in
  pf "\n== corpus == (%d accepted over the campaign, %d after minimization)\n"
    (List.length entries) (List.length final_corpus);
  pf "%5s %5s %5s %6s %5s %6s\n" "id" "gen" "new" "hits" "ops" "ticks";
  List.iter
    (fun e ->
      pf "%5d %5d %5d %6d %5d %6d\n" e.en_id e.en_gen e.en_new e.en_hits
        (Array.length e.en_input.Input.in_ops)
        e.en_input.Input.in_ticks)
    final_corpus;
  pf "\n== crashers == (%d distinct)\n" (List.length crashers);
  List.iter
    (fun c ->
      pf "%-20s gen %d  site %S  detail %S  input %d ops / %d ticks\n"
        (Verify.Taxonomy.name c.cr_class) c.cr_gen c.cr_site c.cr_detail
        (Array.length c.cr_input.Input.in_ops)
        c.cr_input.Input.in_ticks)
    crashers;
  let last = if Array.length gens = 0 then None else Some gens.(Array.length gens - 1) in
  pf "\n== totals ==\n";
  (match last with
  | Some gs ->
    pf "execs %d  edges %d  blocks %d  bits %d  corpus %d  crashers %d\n" gs.gs_execs
      gs.gs_edges gs.gs_blocks gs.gs_bits gs.gs_corpus gs.gs_crashers
  | None -> pf "empty campaign\n");
  pf "campaign: %s\n"
    (match last with Some gs when gs.gs_crashers > 0 -> "CRASHERS" | _ -> "ok");
  Buffer.contents b

(* --- the campaign --- *)

type result = {
  fz_spec : spec;
  fz_complete : bool;  (** every generation accounted for *)
  fz_report : string;  (** deterministic; rendered only when complete *)
  fz_ok : bool;  (** complete and crasher-free *)
  fz_execs : int;
  fz_edges : int;
  fz_blocks : int;
  fz_bits : int;  (** (slot, count class) buckets lit *)
  fz_corpus : entry list;  (** final corpus, id order *)
  fz_crashers : crasher list;
  fz_curve : (int * int * int) list;
      (** (cumulative execs, edge slots lit, buckets lit) per generation *)
  fz_ran_gens : int;  (** generations executed by {e this} run *)
  fz_resumed_gens : int;  (** generations recovered from the store *)
}

(* Runners persist across the per-generation pool runs: worker [w] of
   generation [g] and worker [w] of generation [g+1] are different
   domains, but never live at once, so each slot is used by at most one
   domain at a time and every worker boots its board exactly once per
   campaign. Always forked execution — the AFL recipe is fork-per-input. *)
let make_runners () =
  let runners = Array.make (Jobs.max_jobs + 1) None in
  fun w ->
    match runners.(w) with
    | Some r -> r
    | None ->
      let r = Replayable.Runner.create ~exec:Replayable.Exec.Fork () in
      runners.(w) <- Some r;
      r

(** Run (or resume) a campaign.

    - [jobs] overrides [TICKTOCK_JOBS] for every generation's pool.
    - [store] makes the run resumable: one record per completed
      generation; [resume = true] first replays every committed
      generation through the merge fold and executes only the rest.
    - [stop_after n] stops after [n] {e newly executed} generations —
      the deterministic kill for resumability tests and CI. *)
let run ?jobs ?store ?(resume = false) ?stop_after (spec : spec) =
  if spec.fc_pop <= 0 || spec.fc_gens < 0 then invalid_arg "Fuzzcov: pop/gens out of range";
  let key = spec_key spec in
  let st, recovered =
    match store with
    | None -> (None, [])
    | Some path ->
      if resume then
        let t, recs = Fleet.Store.resume ~path ~spec:key in
        (Some t, recs)
      else (Some (Fleet.Store.create ~path ~spec:key), [])
  in
  let recovered_gens : gen_summary option array = Array.make (max spec.fc_gens 1) None in
  List.iter
    (fun (r : Fleet.Store.record) ->
      if r.Fleet.Store.rc_index >= 0 && r.Fleet.Store.rc_index < spec.fc_gens then
        match decode_gen r.Fleet.Store.rc_data with
        | Some gs when gs.gs_gen = r.Fleet.Store.rc_index ->
          recovered_gens.(r.Fleet.Store.rc_index) <- Some gs
        | _ -> ())
    recovered;
  (* campaign state, advanced by the same fold whether a generation was
     executed or recovered *)
  let virgin : virgin = Hashtbl.create 4096 in
  let corpus = ref [||] in
  let max_hits = ref 0 in
  (* the depth record: inputs beating it are kept even without novel
     buckets, so the count-class ladder has its intermediate rungs *)
  let accepted = ref 0 in
  (* monotonic id source: minimization shrinks [corpus], so its length
     cannot name the next entry *)
  let crash_seen : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let all_crashers = ref [] in
  let execs = ref 0 in
  let gens : gen_summary list ref = ref [] in
  let apply gs =
    List.iter (fun (slot, cls) ->
        let seen = Option.value ~default:0 (Hashtbl.find_opt virgin slot) in
        Hashtbl.replace virgin slot (seen lor cls))
      gs.gs_new_bits;
    corpus := Array.append !corpus (Array.of_list gs.gs_entries);
    accepted := !accepted + List.length gs.gs_entries;
    List.iter (fun e -> if e.en_hits > !max_hits then max_hits := e.en_hits) gs.gs_entries;
    List.iter
      (fun c ->
        Hashtbl.replace crash_seen (Verify.Taxonomy.name c.cr_class, c.cr_site) ();
        all_crashers := !all_crashers @ [ c ])
      gs.gs_new_crashers;
    if (gs.gs_gen + 1) mod minimize_every = 0 then begin
      let before = Array.length !corpus in
      corpus := minimize !corpus;
      let dropped = before - Array.length !corpus in
      if dropped > 0 then Obs.Metrics.host_incr ~by:dropped "fuzzcov/minimized"
    end;
    execs := gs.gs_execs;
    gens := !gens @ [ gs ]
  in
  let runner_for = make_runners () in
  let contracts = contracts_for spec.fc_board in
  let ran = ref 0 in
  let resumed = ref 0 in
  let stopped = ref false in
  (* one generation: derive candidates from the current state, evaluate
     them on the pool, merge strictly in slot order *)
  let execute_gen g =
    let cands = Array.init spec.fc_pop (fun s -> candidate spec ~corpus:!corpus ~gen:g ~slot:s) in
    let init w = runner_for w in
    let cell runner i =
      let r =
        Replayable.Runner.cell runner ~key:spec.fc_board
          ~boot:(fun () ->
            let k = make_board spec.fc_board in
            Obs.Metrics.host_incr "fuzzcov/boards_booted";
            (k, k.Instance.snap_target))
          (fun k ->
            k.Instance.reseed (((g * spec.fc_pop) + i + 1) * 0x9E3779B1);
            run_input k cands.(i))
      in
      Obs.Metrics.host_incr "fuzzcov/execs";
      r
    in
    let results, _stats = Pool.run ?jobs ~batch:1 ~cells:spec.fc_pop ~init ~cell () in
    (* index-ordered merge: the only place campaign state advances *)
    let new_bits = ref [] in
    let new_entries = ref [] in
    let new_crashers = ref [] in
    Array.iteri
      (fun slot r ->
        match r with
        | None -> ()
        | Some { ex_cov; ex_hits; ex_crash } ->
          (match ex_crash with
          | Some (cls, site, detail) ->
            let k = (Verify.Taxonomy.name cls, site) in
            if not (Hashtbl.mem crash_seen k) then begin
              Hashtbl.replace crash_seen k ();
              new_crashers :=
                !new_crashers
                @ [
                    {
                      cr_class = cls;
                      cr_site = site;
                      cr_detail = detail;
                      cr_gen = g;
                      cr_input = cands.(slot);
                    };
                  ]
            end
          | None -> ());
          (* crashing inputs still feed the virgin map (so the same crash
             region is not "novel" forever) but never join the corpus *)
          let n = novelty virgin ex_cov in
          let delta = merge virgin ex_cov in
          new_bits := !new_bits @ delta;
          let gen_max =
            List.fold_left (fun m e -> max m e.en_hits) !max_hits !new_entries
          in
          if spec.fc_guided && (n > 0 || ex_hits > gen_max) && ex_crash = None then begin
            let id = !accepted + List.length !new_entries in
            new_entries :=
              !new_entries
              @ [
                  {
                    en_id = id;
                    en_gen = g;
                    en_new = n;
                    en_hits = ex_hits;
                    en_input = cands.(slot);
                    en_cov = ex_cov;
                  };
                ]
          end)
      results;
    (* fold bookkeeping happens in [apply]; here we just assemble the
       summary exactly as a resume would read it back *)
    let blocks, edges, bits = lit virgin in
    {
      gs_gen = g;
      gs_execs = !execs + spec.fc_pop;
      gs_edges = edges;
      gs_blocks = blocks;
      gs_bits = bits;
      gs_corpus =
        (let after = Array.length !corpus + List.length !new_entries in
         if (g + 1) mod minimize_every = 0 then
           Array.length
             (minimize (Array.append !corpus (Array.of_list !new_entries)))
         else after);
      gs_crashers = Hashtbl.length crash_seen;
      gs_new_bits = !new_bits;
      gs_entries = !new_entries;
      gs_new_crashers = !new_crashers;
    }
  in
  Verify.Violation.with_enabled contracts (fun () ->
      let g = ref 0 in
      while !g < spec.fc_gens && not !stopped do
        (match recovered_gens.(!g) with
        | Some gs ->
          incr resumed;
          apply gs
        | None ->
          let budget_left =
            match stop_after with Some n -> !ran < n | None -> true
          in
          if not budget_left then stopped := true
          else begin
            let gs = execute_gen !g in
            (* the subtle ordering bug to avoid: [execute_gen] computes
               novelty against the pre-merge virgin map, so [apply] (which
               merges) must run after; but the summary above already
               carries post-merge totals because [merge] mutated [virgin]
               in place — [apply]'s re-merge of the delta is idempotent. *)
            (match st with
            | Some t -> Fleet.Store.append t ~index:!g ~data:(encode_gen gs)
            | None -> ());
            incr ran;
            apply gs
          end);
        if not !stopped then incr g
      done);
  if !resumed > 0 then Obs.Metrics.host_incr ~by:!resumed "fuzzcov/resume_gens";
  (match st with Some t -> Fleet.Store.close t | None -> ());
  let gens_arr = Array.of_list !gens in
  let complete = Array.length gens_arr = spec.fc_gens in
  let report = if complete then render spec gens_arr else "" in
  let blocks, edges, bits = lit virgin in
  {
    fz_spec = spec;
    fz_complete = complete;
    fz_report = report;
    fz_ok = complete && Hashtbl.length crash_seen = 0;
    fz_execs = !execs;
    fz_edges = edges;
    fz_blocks = blocks;
    fz_bits = bits;
    fz_corpus = Array.to_list !corpus;
    fz_crashers = !all_crashers;
    fz_curve =
      Array.to_list gens_arr |> List.map (fun gs -> (gs.gs_execs, gs.gs_edges, gs.gs_bits));
    fz_ran_gens = !ran;
    fz_resumed_gens = !resumed;
  }

(* --- replayable crash bundles --- *)

(** A crasher, serialized with everything replay needs: the board, the
    expected taxonomy class and the exact (seed, schedule) genome. *)
type bundle = {
  bu_board : string;
  bu_class : Verify.Taxonomy.cls;
  bu_site : string;
  bu_detail : string;
  bu_input : Input.t;
}

let bundle_magic = "TICKFUZZ v1"

let bundle_of_crasher ~board c =
  {
    bu_board = board;
    bu_class = c.cr_class;
    bu_site = c.cr_site;
    bu_detail = c.cr_detail;
    bu_input = c.cr_input;
  }

let write_bundle path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\nboard %s\nclass %s\nsite %S\ndetail %S\ninput %s\n" bundle_magic
        b.bu_board
        (Verify.Taxonomy.name b.bu_class)
        b.bu_site b.bu_detail (Input.encode b.bu_input))

let read_bundle path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        let line () = input_line ic in
        if line () <> bundle_magic then None
        else begin
          let board = Scanf.sscanf (line ()) "board %s" Fun.id in
          let cls = Scanf.sscanf (line ()) "class %s" Fun.id in
          let site = Scanf.sscanf (line ()) "site %S" Fun.id in
          let detail = Scanf.sscanf (line ()) "detail %S" Fun.id in
          let input = Scanf.sscanf (line ()) "input %s" Fun.id in
          match (Verify.Taxonomy.of_name cls, Input.decode input) with
          | Some bu_class, Some bu_input ->
            Some { bu_board = board; bu_class; bu_site = site; bu_detail = detail; bu_input }
          | _ -> None
        end
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

(** Replay a bundle on a freshly booted board. Returns
    [(reproduced, observed)]: [reproduced] iff the observed crash class
    and site match the bundle's. Deterministic — a bundle either always
    reproduces or never does. *)
let replay (b : bundle) =
  let k = make_board b.bu_board in
  let r =
    Verify.Violation.with_enabled (contracts_for b.bu_board) (fun () -> run_input k b.bu_input)
  in
  match r.ex_crash with
  | Some (cls, site, _) -> (cls = b.bu_class && site = b.bu_site, Some (cls, site))
  | None -> (false, None)
