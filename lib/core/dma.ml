(** DMA modeling and the safe [DmaCell] interface (§4.6, Figure 9).

    DMA is the escape hatch: an engine programmed over MMIO with a plain
    base/length pair will happily overwrite kernel memory, bypassing both
    the MPU (DMA masters are not behind the CPU's MPU) and every invariant
    this library verifies. Tock's [TakeCell] discipline is advisory — a
    driver can retake the buffer while the engine is mid-flight, aliasing a
    mutable buffer (the misuse the paper found).

    [Cell] is TickTock's fix, by construction:
    - [place] consumes ownership of a buffer and mints a {!Wrapper} whose
      base pointer is {e guaranteed} to denote a real, exclusively-owned
      buffer — the only value {!Engine.start} accepts;
    - while the cell holds the buffer, driver reads/writes of it are
      ownership violations (caught by the contract machinery, standing in
      for rustc's borrow checker);
    - [completed] returns the buffer only once the engine is idle.

    {!Engine.start_raw} — the plain-usize MMIO path — is kept so tests and
    examples can demonstrate the clobbering the safe interface rules out. *)

type owner = Driver | Dma_engine

module Buffer = struct
  type t = {
    mem : Memory.t;
    addr : Word32.t;
    len : int;
    mutable owner : owner;
  }

  let create mem ~addr ~len =
    Verify.Violation.requiref "DmaBuffer.create" (len > 0 && Word32.is_valid addr) "len=%d" len;
    { mem; addr; len; owner = Driver }

  let addr t = t.addr
  let len t = t.len
  let range t = Range.make ~start:t.addr ~size:t.len

  let read t i =
    Verify.Violation.require "DmaBuffer.read: driver owns buffer" (t.owner = Driver);
    Verify.Violation.requiref "DmaBuffer.read: bounds" (i >= 0 && i < t.len) "i=%d len=%d" i
      t.len;
    Memory.read8 t.mem (Word32.add t.addr i)

  let write t i v =
    Verify.Violation.require "DmaBuffer.write: driver owns buffer" (t.owner = Driver);
    Verify.Violation.requiref "DmaBuffer.write: bounds" (i >= 0 && i < t.len) "i=%d len=%d" i
      t.len;
    Memory.write8 t.mem (Word32.add t.addr i) v
end

module Wrapper = struct
  (* Constructed only by [Cell.place]; carries the proof that the usize is
     a live DMA buffer. *)
  type t = { base : Word32.t; wlen : int }

  let base t = t.base
  let len t = t.wlen
end

module Engine = struct
  type t = {
    mem : Memory.t;
    mutable busy : bool;
    mutable target : Range.t;
    mutable fill : int;  (** modeled peripheral data: a repeating byte *)
    mutable remaining : int;
    mutable nack_pending : bool;  (** injected transient bus NACK *)
    mutable nacks : int;
  }

  let create mem =
    {
      mem;
      busy = false;
      target = Range.empty;
      fill = 0xD5;
      remaining = 0;
      nack_pending = false;
      nacks = 0;
    }

  let is_busy t = t.busy
  let set_fill t b = t.fill <- b land 0xff

  (* Fault injection: the bus NACKs the engine's next burst. The transfer
     makes no progress that step and retries — a transient stall, never
     data corruption (real engines re-arbitrate). *)
  let inject_nack t = t.nack_pending <- true
  let nacks t = t.nacks

  (* The raw MMIO path: base-pointer and length registers take arbitrary
     words. Nothing here can tell a buffer from the kernel's stack. *)
  let start_raw t ~base ~len =
    Verify.Violation.requiref "DmaEngine.start_raw" (len > 0 && Word32.is_valid base) "len=%d"
      len;
    t.busy <- true;
    t.target <- Range.make ~start:base ~size:len;
    t.remaining <- len

  let start t wrapper = start_raw t ~base:(Wrapper.base wrapper) ~len:(Wrapper.len wrapper)

  (* Advance the transfer by [n] bytes; DMA writes bypass the MPU, as on
     real hardware, hence the raw writes. *)
  let step t n =
    if t.busy && t.nack_pending then begin
      t.nack_pending <- false;
      t.nacks <- t.nacks + 1
    end
    else if t.busy then begin
      let done_already = Range.size t.target - t.remaining in
      let burst = min n t.remaining in
      for i = 0 to burst - 1 do
        Memory.write8 t.mem (Word32.add (Range.start t.target) (done_already + i)) t.fill
      done;
      t.remaining <- t.remaining - burst;
      if t.remaining = 0 then t.busy <- false
    end

  let run_to_completion t =
    while t.busy do
      step t max_int
    done
end

module Cell = struct
  type t = { mutable held : Buffer.t option }

  let create () = { held = None }
  let is_some t = t.held <> None

  let place t buf =
    match t.held with
    | Some _ -> None (* cannot replace, DMA in progress *)
    | None ->
      Verify.Violation.require "DmaCell.place: buffer owned by driver"
        (buf.Buffer.owner = Driver);
      buf.Buffer.owner <- Dma_engine;
      t.held <- Some buf;
      Some { Wrapper.base = Buffer.addr buf; wlen = Buffer.len buf }

  (* Marked unsafe in the paper: the caller must ensure the DMA operation
     has completed. Our model makes the obligation checkable by taking the
     engine. *)
  let completed t engine =
    Verify.Violation.require "DmaCell.completed: engine idle"
      (not (Engine.is_busy engine));
    match t.held with
    | None -> None
    | Some buf ->
      buf.Buffer.owner <- Driver;
      t.held <- None;
      Some buf
end

(** The misuse-prone legacy interface: [take] hands the buffer back to the
    driver with no regard for an in-flight transfer. Kept to reproduce the
    aliasing bug (§4.6) in tests. *)
module Take_cell = struct
  type t = { mutable held : Buffer.t option }

  let create () = { held = None }

  let put t buf = t.held <- Some buf

  let take t =
    match t.held with
    | None -> None
    | Some buf ->
      (* No ownership transition: the buffer may still be owned by the DMA
         engine — this is the hole. *)
      t.held <- None;
      Some buf
end
