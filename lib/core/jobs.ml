(** The one [TICKTOCK_JOBS] parser.

    Every Domain-parallel campaign (fuzz, chaos, fleet) reads the same
    environment variable; the parsing used to be copy-pasted with subtly
    divergent fallbacks (fuzz fell back to the recommended domain count on
    a parse failure, chaos to 1). This module is the single authority:

    - unset, empty, or unparsable → {!default} (the runtime's recommended
      domain count, clamped);
    - a valid positive integer → that count, clamped to [[min_jobs,
      max_jobs]].

    The clamp bounds are generous — campaigns cap the worker count to the
    available work anyway — but keep a hostile [TICKTOCK_JOBS=100000] from
    spawning an absurd domain fleet. Job count never affects campaign
    {e output}: every harness merges results in cell-index order, so the
    report is byte-identical at any setting. *)

let min_jobs = 1
let max_jobs = 128

let clamp n = if n < min_jobs then min_jobs else if n > max_jobs then max_jobs else n

(** What an unset (or unusable) [TICKTOCK_JOBS] means: the runtime's
    recommended domain count, clamped. *)
let default () = clamp (Stdlib.Domain.recommended_domain_count ())

(** Pure parser, exposed for tests: [of_string (Sys.getenv_opt
    "TICKTOCK_JOBS")] is exactly {!count}. *)
let of_string v =
  match v with
  | None -> default ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> clamp n
    | Some _ | None -> default ())

let count () = of_string (Sys.getenv_opt "TICKTOCK_JOBS")
