(** The kernel-side hook record the chaos engine drives.

    [lib/chaos] sits {e above} the kernel (it orchestrates whole boards), so
    the kernel cannot call it directly. Instead the kernel accepts this tiny
    record of mutable closures at creation time and invokes them at its two
    injection points; the chaos engine replaces the no-op defaults after the
    instance is built. With no chaos record attached (the default), the
    kernel takes a single [match ... with None] per slice and is otherwise
    byte-for-byte the uninjected kernel. *)

(** A perturbation applied to the next context-switch slice, modeling a
    CPU-level transient fault. *)
type slice_perturb =
  | P_none
  | P_spurious_systick
      (** a SysTick that fires the instant the process resumes: the slice is
          preempted after zero user actions (lost quantum, otherwise benign) *)
  | P_spurious_svc
      (** a spurious SVC exception entry/return pair: costs two exception
          round-trips of model time, architecturally absorbed *)
  | P_drop_systick
      (** the slice's SysTick never arrives: the process runs until its next
          syscall — or forever, if it doesn't make one. The software
          watchdog exists to catch exactly this. *)
  | P_corrupt_exc_return of int
      (** EXC_RETURN corrupted to the given value on exception return: the
          switch cannot complete and the process is faulted *)

type t = {
  mutable ch_tick : tick:int -> unit;
      (** called once per kernel tick, before capsules run: the engine fires
          memory bit flips and device faults scheduled for this tick *)
  mutable ch_pre_slice : pid:int -> tick:int -> slice_perturb;
      (** called right after [configure_mpu] (and the scrubber's expected
          snapshot) for the process about to run: the engine may corrupt MPU
          registers here and/or return a CPU perturbation for the slice *)
  mutable ch_mpu_injected_at : int option;
      (** model-cycle stamp of the latest un-detected MPU register
          corruption; set by the engine, consumed (cleared) by the scrubber
          to compute detection latency *)
  mutable ch_injected : int;  (** total faults injected, for metrics *)
}

let create () =
  {
    ch_tick = (fun ~tick:_ -> ());
    ch_pre_slice = (fun ~pid:_ ~tick:_ -> P_none);
    ch_mpu_injected_at = None;
    ch_injected = 0;
  }
