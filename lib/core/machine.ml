(** Board wiring: memory, MPU hardware and CPU, connected.

    On creation the MPU model is installed as the memory's access checker,
    closing the loop the real bus closes in silicon: every checked access
    made by (emulated) unprivileged code consults the live MPU
    configuration and the CPU's current privilege. *)

type arm = {
  arm_mem : Memory.t;
  arm_cpu : Fluxarm.Cpu.t;
  arm_mpu : Mpu_hw.Armv7m_mpu.t;
  arm_systick : Mpu_hw.Systick.t;
  arm_nvic : Mpu_hw.Nvic.t;
  arm_scb : Mpu_hw.Scb.t;
}

let create_arm () =
  let arm_mem = Memory.create () in
  let arm_cpu = Fluxarm.Cpu.create arm_mem in
  let arm_mpu = Mpu_hw.Armv7m_mpu.create () in
  let arm_scb = Mpu_hw.Scb.create () in
  let checker =
    Mpu_hw.Armv7m_mpu.checker arm_mpu ~cpu_privileged:(fun () ->
        Fluxarm.Cpu.privileged arm_cpu)
  in
  (* the bus latches fault status into the SCB before raising the fault,
     as the MemManage machinery does in silicon. Denied decisions are never
     cached by the bus, so the latch fires on every denial. *)
  Memory.set_checker arm_mem
    (Some
       {
         checker with
         Memory.check =
           (fun addr access ->
             match checker.Memory.check addr access with
             | Ok () -> Ok ()
             | Error _ as e ->
               Mpu_hw.Scb.record_memfault arm_scb ~addr ~access;
               e);
       });
  {
    arm_mem;
    arm_cpu;
    arm_mpu;
    arm_systick = Mpu_hw.Systick.create ();
    arm_nvic = Mpu_hw.Nvic.create ();
    arm_scb;
  }

(** An ARMv8-M (Cortex-M33-style) board: same CPU and memory map, PMSAv8
    MPU installed as the bus checker. *)
type arm_v8 = {
  v8_mem : Memory.t;
  v8_cpu : Fluxarm.Cpu.t;
  v8_mpu : Mpu_hw.Armv8m_mpu.t;
  v8_systick : Mpu_hw.Systick.t;
}

let create_arm_v8 () =
  let v8_mem = Memory.create () in
  let v8_cpu = Fluxarm.Cpu.create v8_mem in
  let v8_mpu = Mpu_hw.Armv8m_mpu.create () in
  Memory.set_checker v8_mem
    (Some
       (Mpu_hw.Armv8m_mpu.checker v8_mpu ~cpu_privileged:(fun () ->
            Fluxarm.Cpu.privileged v8_cpu)));
  { v8_mem; v8_cpu; v8_mpu; v8_systick = Mpu_hw.Systick.create () }

type riscv = {
  rv_mem : Memory.t;
  rv_pmp : Mpu_hw.Pmp.t;
  rv_machine_mode : bool ref;  (** true while the kernel runs *)
}

let create_riscv chip =
  let rv_mem = Memory.create () in
  let rv_pmp = Mpu_hw.Pmp.create chip in
  let rv_machine_mode = ref true in
  Memory.set_checker rv_mem
    (Some (Mpu_hw.Pmp.checker rv_pmp ~cpu_machine_mode:(fun () -> !rv_machine_mode)));
  { rv_mem; rv_pmp; rv_machine_mode }
