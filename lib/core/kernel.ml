(** The kernel: process loading, syscall dispatch, scheduling and context
    switching — generic over the memory manager ({!Mm.S}), so the very same
    code runs as "Tock" (monolithic manager) and as "TickTock" (granular
    manager) in the evaluation, on ARM (with the full FluxArm context
    switch) or on RISC-V PMP (with a modeled machine-mode switch).

    Scheduling is Tock's: a single-threaded, event-driven round robin in
    which each process runs until it syscalls, faults, exits or exhausts its
    quantum (SysTick preemption). On ARM every switch goes through the real
    modeled assembly: [switch_to_user_part1], the process's checked memory
    accesses while the CPU is unprivileged, a hardware exception
    ([preempt]), and [switch_to_user_part2]. *)

(* Driver numbers of the modeled capsules. *)
let driver_alarm = 0
let driver_console = 1
let driver_sensor = 2
let driver_button = 3

let known_drivers = [ driver_alarm; driver_console; driver_sensor; driver_button ]

(* Initial-frame constants: xPSR with the Thumb bit, Tock's sentinel LR. *)
let initial_psr = 0x0100_0000
let initial_lr = 0xFFFF_FFFF

(** Scheduling policy — the subset of Tock's scheduler zoo we model.
    [Round_robin] gives every runnable process one quantum-bounded slice per
    tick; [Cooperative] never preempts (a process runs until it syscalls,
    exits or faults); [Priority] runs only the highest-priority runnable
    process each tick (smaller number = higher priority), starving the
    rest — exactly the sharp edge Tock documents for it. *)
type sched =
  | Round_robin
  | Cooperative
  | Priority of (int -> int)  (** pid -> priority *)

type switcher =
  | Arm_switch of Fluxarm.Cpu.t
  | Arm_mc_switch of Fluxarm.Cpu.t * Fluxarm.Handlers_mc.t
      (** context switch through assembled Thumb-2 machine code *)
  | Sim_switch of bool ref  (** RISC-V: [true] while the kernel runs *)

module Make (MM : Mm.S) = struct
  type proc = MM.alloc Process.t

  type t = {
    mem : Memory.t;
    hw : MM.hw;
    switcher : switcher;
    hooks : Hooks.t;
    quantum : int;
    mutable procs : proc list;
    mutable next_pid : int;
    mutable flash_cursor : Word32.t;
    mutable ram_cursor : Word32.t;
    mutable ticks : int;
    mutable console : Buffer.t;  (** kernel console (fault reports etc.) *)
    capsules : (int, Capsule_intf.t) Hashtbl.t;
    mutable capsules_initialized : bool;
    sched : sched;
    syscall_filter : (int -> Userland.call -> bool) option;
    trace : Trace.t option;
    systick : Mpu_hw.Systick.t option;
        (** when present (ARM boards), the scheduling quantum is driven by
            the modeled SysTick countdown over consumed cycles instead of
            an action budget *)
    obs : Obs.Recorder.t option;
        (** cross-layer event recorder; [None] = tracing absent, and every
            hook site is a single pattern match that allocates nothing *)
    metrics : Obs.Metrics.t;
    syscall_hists : Obs.Metrics.hist array;
        (** model-cycle syscall latency per call kind ({!syscall_kind}) *)
    chaos : Chaos_intf.t option;
        (** fault-injection hooks; [None] (the default) costs one pattern
            match per tick/slice and perturbs nothing *)
    scrub_every : int;
        (** MPU config scrubber cadence in context switches; 0 = off *)
    scrub_policy : [ `Repair | `Fault ];
        (** on detected register corruption: re-sync from the allocator, or
            fault the affected process *)
    watchdog : int;
        (** syscall-less run budget in model cycles; 0 = off *)
    restart_decay_span : int;
        (** healthy ticks that forgive one recent fault for the plain
            [Restart] policy; 0 = legacy behavior (never decays) *)
    mutable switch_count : int;  (** context switches, for scrub cadence *)
    mutable expected_mpu : int list;
        (** register snapshot taken right after [configure_mpu] — what the
            scrubber compares the live registers against *)
  }

  let name = MM.name

  let syscall_kind_names = [| "yield"; "subscribe"; "command"; "allow_rw"; "allow_ro"; "memop" |]

  let syscall_kind = function
    | Userland.Yield -> 0
    | Userland.Subscribe _ -> 1
    | Userland.Command _ -> 2
    | Userland.Allow_rw _ -> 3
    | Userland.Allow_ro _ -> 4
    | Userland.Memop _ -> 5

  let create ~mem ~hw ~switcher ?(quantum = 64) ?(capsules = []) ?(sched = Round_robin)
      ?syscall_filter ?trace ?systick ?obs ?chaos ?(scrub_every = 0)
      ?(scrub_policy = `Repair) ?(watchdog = 0) ?(restart_decay_span = 0) () =
    let metrics = Obs.Metrics.create () in
    let t =
      {
        mem;
        hw;
        switcher;
        hooks = Hooks.create ();
        quantum;
        procs = [];
        next_pid = 0;
        flash_cursor = Range.start Layout.app_flash;
        ram_cursor = Range.start Layout.app_sram;
        ticks = 0;
        console = Buffer.create 256;
        capsules = Hashtbl.create 8;
        capsules_initialized = false;
        sched;
        syscall_filter;
        trace;
        systick;
        obs;
        metrics;
        syscall_hists =
          Array.map (fun k -> Obs.Metrics.hist metrics ("syscall_cycles/" ^ k)) syscall_kind_names;
        chaos;
        scrub_every;
        scrub_policy;
        watchdog;
        restart_decay_span;
        switch_count = 0;
        expected_mpu = [];
      }
    in
    List.iter (fun (c : Capsule_intf.t) -> Hashtbl.replace t.capsules c.driver_num c) capsules;
    t

  let trace_event t event =
    match t.trace with None -> () | Some tr -> Trace.record tr ~tick:t.ticks event

  (* Call sites match on [t.obs] themselves so a disabled kernel never even
     constructs the event value. *)
  let obs_recorder t = t.obs

  let obs_sink t =
    match t.obs with
    | None -> None
    | Some r -> Some (Obs.Recorder.sink r ~now:(fun () -> t.ticks))


  let hooks t = t.hooks
  let processes t = t.procs
  let ticks t = t.ticks

  let find_process t pid = List.find_opt (fun (p : proc) -> p.Process.pid = pid) t.procs

  let log_console t msg =
    Buffer.add_string t.console msg;
    Buffer.add_char t.console '\n'

  let console_output t = Buffer.contents t.console

  (* --- process creation (Figure 11's [create]) --- *)

  let stored_state_size = 64

  exception Panic of string
  (** Raised when a process with the [Panic] fault policy faults: the
      modeled analog of Tock's kernel panic (the whole board halts). *)

  let create_process t ~name ~payload ~program ~min_ram ?(grant_reserve = 1024)
      ?(heap_headroom = 2048) ?(fault_policy = Process.Stop) ?program_factory () =
    Hooks.measure t.hooks "create" @@ fun () ->
    let ( let* ) = Result.bind in
    let img = { Loader.app_name = name; min_ram; payload } in
    (* Typed refusal for layouts no board of this memory map could ever
       satisfy (OTA hardening): a RAM request beyond the whole app-SRAM
       window is [Image_oversized], not a transient [Out_of_memory]. *)
    let* () =
      if min_ram < 0 || min_ram + grant_reserve + heap_headroom > Range.size Layout.app_sram
      then Error Kerror.Image_oversized
      else Ok ()
    in
    let* placed, flash_cursor = Loader.place t.mem ~cursor:t.flash_cursor img in
    t.flash_cursor <- flash_cursor;
    let unalloc_size = Range.end_ Layout.app_sram - t.ram_cursor in
    (* Size the block for the requested RAM plus brk headroom (the region
       geometry must be established for the largest break the process may
       ever request), then pull the initial break back down to the
       requested size. This mirrors Tock: the TBF's minimum RAM is the
       envelope; the initial break covers only stack + data. *)
    let* alloc =
      MM.allocate ~unalloc_start:t.ram_cursor ~unalloc_size
        ~min_size:(min_ram + heap_headroom) ~app_size:min_ram ~kernel_size:grant_reserve
        ~flash_start:placed.Loader.flash_start ~flash_size:placed.Loader.flash_size
    in
    (match obs_sink t with None -> () | Some _ as sink -> MM.set_obs alloc sink);
    (if heap_headroom > 0 then
       match MM.brk alloc t.hw ~new_app_break:(MM.memory_start alloc + min_ram) with
       | Ok _ -> ()
       | Error _ -> () (* keep the envelope break; growth simply isn't needed *));
    t.ram_cursor <- MM.memory_start alloc + MM.memory_size alloc;
    (* Zero the process RAM block, as Tock does before handing it out
       (identical cost on both kernels; with the flash copy this dominates
       the create row, which is why Figure 11 shows the two kernels within
       a percent of each other there). *)
    Cycles.tick ~n:(MM.memory_size alloc / 4 * Cycles.mem) Cycles.global;
    (* Stored-state block for r4-r11 lives in the kernel-owned grant
       region, like Tock's. *)
    let* regs_base =
      Hooks.measure t.hooks "allocate_grant" @@ fun () ->
      MM.allocate_grant alloc ~size:stored_state_size ~align:8
    in
    (* Synthesize the initial exception frame the first context switch will
       unstack: r0-r3, r12, lr, pc, xpsr. *)
    let psp = MM.app_break alloc - (4 * Fluxarm.Exn.frame_words) in
    Cycles.tick ~n:(Fluxarm.Exn.frame_words * Cycles.mem) Cycles.global;
    for i = 0 to 4 do
      Memory.write32 t.mem (psp + (4 * i)) 0
    done;
    Memory.write32 t.mem (psp + 20) initial_lr;
    Memory.write32 t.mem (psp + 24) placed.Loader.entry;
    Memory.write32 t.mem (psp + 28) initial_psr;
    let proc =
      {
        Process.pid = t.next_pid;
        name;
        alloc;
        flash = placed;
        regs_base;
        state = Process.Ready;
        program;
        fed_inputs = [];
        psp;
        last_result = 0;
        allowed_ro = [];
        allowed_rw = [];
        subscriptions = [];
        alarm_at = None;
        grants = [];
        pending_upcalls = Queue.create ();
        output = Buffer.create 128;
        fault_policy;
        program_factory;
        initial_break = MM.app_break alloc;
        restarts = 0;
        recent_faults = 0;
        healthy_since = 0;
        restart_at = None;
        run_since_syscall = 0;
        slices = 0;
        syscall_count = 0;
        mem_watermark = MM.app_break alloc - MM.memory_start alloc;
      }
    in
    t.next_pid <- t.next_pid + 1;
    t.procs <- t.procs @ [ proc ];
    trace_event t (Trace.Created { pid = proc.Process.pid; pname = name });
    (match t.obs with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r ~tick:t.ticks
        (Obs.Event.Proc_created { pid = proc.Process.pid; name }));
    Ok proc

  (* Tock-style process loading: walk the app-flash region parsing TBF
     headers until the first invalid one, creating a process for each image
     whose name the [registry] can supply a program for. Returns the loaded
     processes. The images must already be in flash (e.g. written by a
     previous kernel's loader, or flashed by a test). *)
  let load_processes t ~registry ?(require_credentials = false) () =
    let rec walk cursor acc =
      if cursor + 24 > Range.end_ Layout.app_flash then List.rev acc
      else
        match Loader.read_image t.mem ~base:cursor with
        | Error _ -> List.rev acc
        | Ok img when require_credentials && not (Loader.verify_credentials t.mem ~base:cursor)
          ->
          log_console t
            (Printf.sprintf "rejecting %S: invalid credentials" img.Loader.app_name);
          let size = Loader.padded_size img in
          walk (Math32.align_up (cursor + size) ~align:size) acc
        | Ok img -> (
          let size = Loader.padded_size img in
          let next = Math32.align_up (cursor + size) ~align:size in
          match registry img.Loader.app_name with
          | None -> walk next acc
          | Some program -> (
            match
              create_process t ~name:img.Loader.app_name ~payload:img.Loader.payload ~program
                ~min_ram:img.Loader.min_ram ()
            with
            | Ok p -> walk next (p :: acc)
            | Error _ -> walk next acc))
    in
    walk (Range.start Layout.app_flash) []

  (* A Tock process-console style listing ("ps"). *)
  let ps t =
    let b = Buffer.create 256 in
    Printf.bprintf b " PID Name                Slices  Syscalls  Restarts  State\n";
    List.iter
      (fun (p : proc) ->
        Printf.bprintf b " %3d %-18s %6d %9d %9d  %s\n" p.Process.pid p.Process.name
          p.Process.slices p.Process.syscall_count p.Process.restarts
          (Process.state_to_string p.Process.state))
      t.procs;
    Buffer.contents b

  (* --- driver grants: entered on first use, like Tock's grant regions --- *)

  let driver_grant t (proc : proc) driver =
    match List.assoc_opt driver proc.grants with
    | Some g -> Ok g
    | None ->
      if not (List.mem driver known_drivers || Hashtbl.mem t.capsules driver) then
        Error Kerror.Not_supported
      else begin
        let result =
          Hooks.measure t.hooks "allocate_grant" @@ fun () ->
          MM.allocate_grant proc.alloc ~size:64 ~align:8
        in
        (match t.obs with
        | None -> ()
        | Some r ->
          Obs.Recorder.record r ~tick:t.ticks
            (Obs.Event.Grant
               {
                 pid = proc.Process.pid;
                 driver;
                 addr = Result.value result ~default:0;
                 ok = Result.is_ok result;
               }));
        Result.map
          (fun g ->
            proc.grants <- (driver, g) :: proc.grants;
            g)
          result
      end

  (* --- capsule support --- *)

  let schedule_upcall ?t (proc : proc) ~upcall_id ~arg =
    (match t with
    | Some t ->
      trace_event t (Trace.Upcall { pid = proc.Process.pid; upcall_id; arg });
      (match t.obs with
      | None -> ()
      | Some r ->
        Obs.Recorder.record r ~tick:t.ticks
          (Obs.Event.Upcall { pid = proc.Process.pid; upcall_id; arg }))
    | None -> ());
    match proc.Process.state with
    | Process.Yielded ->
      proc.Process.state <- Process.Ready;
      proc.Process.last_result <- arg;
      ignore upcall_id
    | Process.Ready | Process.Faulted _ | Process.Exited _ ->
      Queue.push (upcall_id, arg) proc.Process.pending_upcalls

  (* The mediated view of one process a capsule gets (§2.1: capsules are
     isolated by construction — they can only reach a process through these
     closures, which validate every address against allowed buffers). *)
  let make_handle t (proc : proc) driver : Capsule_intf.process_handle =
    let allowed_ro () = List.assoc_opt driver proc.Process.allowed_ro in
    let allowed_rw () = List.assoc_opt driver proc.Process.allowed_rw in
    let in_buffer get a =
      match get () with Some r when Range.contains r a -> true | Some _ | None -> false
    in
    {
      Capsule_intf.ph_pid = proc.Process.pid;
      ph_name = proc.Process.name;
      ph_memory_start = (fun () -> MM.memory_start proc.Process.alloc);
      ph_allowed_ro = allowed_ro;
      ph_allowed_rw = allowed_rw;
      ph_read_byte =
        (fun a ->
          Cycles.tick ~n:Cycles.mem Cycles.global;
          if in_buffer allowed_ro a || in_buffer allowed_rw a then Ok (Memory.read8 t.mem a)
          else Error Kerror.Invalid_buffer);
      ph_write_byte =
        (fun a v ->
          Cycles.tick ~n:Cycles.mem Cycles.global;
          if in_buffer allowed_rw a then Ok (Memory.write8 t.mem a v)
          else Error Kerror.Invalid_buffer);
      ph_grant =
        (fun ~size ~align ->
          (* get-or-create, like Tock's Grant::enter: one block per driver
             per process, allocated on first use *)
          match List.assoc_opt driver proc.Process.grants with
          | Some g -> Ok g
          | None ->
            let result =
              Hooks.measure t.hooks "allocate_grant" @@ fun () ->
              MM.allocate_grant proc.Process.alloc ~size ~align
            in
            Result.map
              (fun g ->
                proc.Process.grants <- (driver, g) :: proc.Process.grants;
                g)
              result);
      ph_schedule_upcall = (fun ~upcall_id ~arg -> schedule_upcall ~t proc ~upcall_id ~arg);
      ph_subscribed = (fun () -> List.assoc_opt driver proc.Process.subscriptions);
    }

  let services t : Capsule_intf.services =
    {
      Capsule_intf.svc_handle =
        (fun ~pid ~driver ->
          match find_process t pid with
          | Some p when Process.is_live p -> Some (make_handle t p driver)
          | Some _ | None -> None);
      svc_live_pids =
        (fun () ->
          List.filter_map
            (fun (p : proc) -> if Process.is_live p then Some p.Process.pid else None)
            t.procs);
      svc_now = (fun () -> t.ticks);
      svc_ps = (fun () -> ps t);
    }

  (* Capsules receive their kernel services lazily, at first dispatch. *)
  let ensure_capsules_initialized t =
    if not t.capsules_initialized then begin
      t.capsules_initialized <- true;
      Hashtbl.iter (fun _ (c : Capsule_intf.t) -> c.Capsule_intf.cap_init (services t)) t.capsules
    end

  (* --- syscall dispatch --- *)

  let sensor_reading (proc : proc) cmd =
    (* Deterministic "sensor": its value depends on the process's memory
       placement, the way uninitialized-ADC readings on hardware depend on
       the board's physical state. Layout-dependent on purpose: this is one
       of the §6.1 classes expected to differ between Tock and TickTock. *)
    (MM.memory_start proc.alloc lsr 4) land 0xffff lxor (cmd * 7)

  let signed_of_word w = if w land 0x8000_0000 <> 0 then w - (1 lsl 32) else w

  let note_watermark (proc : proc) =
    let w = MM.app_break proc.alloc - MM.memory_start proc.alloc in
    if w > proc.Process.mem_watermark then proc.Process.mem_watermark <- w

  let note_brk t (proc : proc) result =
    note_watermark proc;
    match t.obs with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r ~tick:t.ticks
        (Obs.Event.Brk
           {
             pid = proc.Process.pid;
             app_break = MM.app_break proc.alloc;
             ok = Result.is_ok result;
           })

  let handle_memop t (proc : proc) ~op ~arg =
    if op = Userland.memop_brk then begin
      let result =
        Hooks.measure t.hooks "brk" @@ fun () -> MM.brk proc.alloc t.hw ~new_app_break:arg
      in
      note_brk t proc result;
      match result with
      | Ok b -> b
      | Error _ -> Userland.failure
    end
    else if op = Userland.memop_sbrk then begin
      let result =
        Hooks.measure t.hooks "brk" @@ fun () ->
        MM.sbrk proc.alloc t.hw ~delta:(signed_of_word arg)
      in
      note_brk t proc result;
      match result with
      | Ok b -> b
      | Error _ -> Userland.failure
    end
    else if op = Userland.memop_memory_start then MM.memory_start proc.alloc
    else if op = Userland.memop_memory_end then MM.app_break proc.alloc
    else if op = Userland.memop_flash_start then proc.flash.Loader.flash_start
    else if op = Userland.memop_flash_end then
      proc.flash.Loader.flash_start + proc.flash.Loader.flash_size
    else if op = Userland.memop_grant_begins then MM.kernel_break proc.alloc
    else Userland.failure

  let handle_command t (proc : proc) ~driver ~cmd ~arg1 ~arg2 =
    ignore arg2;
    match driver_grant t proc driver with
    | Error _ -> Userland.failure
    | Ok _ when Hashtbl.mem t.capsules driver ->
      ensure_capsules_initialized t;
      let capsule = Hashtbl.find t.capsules driver in
      capsule.Capsule_intf.cap_command (make_handle t proc driver) ~cmd ~arg1 ~arg2
    | Ok _ ->
      if driver = driver_alarm then begin
        if cmd = 0 then Userland.success (* driver exists *)
        else if cmd = 1 then begin
          (* set alarm in [arg1] ticks *)
          proc.alarm_at <- Some (t.ticks + max arg1 1);
          Userland.success
        end
        else if cmd = 2 then t.ticks (* read the "clock" *)
        else Userland.failure
      end
      else if driver = driver_console then Userland.success
      else if driver = driver_sensor then sensor_reading proc cmd
      else if driver = driver_button then if cmd = 0 then Userland.success else 0
      else Userland.failure

  let rec handle_syscall t (proc : proc) call =
    match t.syscall_filter with
    | Some allow when not (allow proc.Process.pid call) -> Userland.failure
    | Some _ | None -> handle_syscall_unfiltered t proc call

  and handle_syscall_unfiltered t (proc : proc) call =
    match call with
    | Userland.Yield -> (
      (* queued capsule upcalls deliver first; then the builtin alarm *)
      match Queue.take_opt proc.pending_upcalls with
      | Some (_upcall_id, arg) -> arg
      | None -> (
        match proc.alarm_at with
        | Some due when due <= t.ticks ->
          proc.alarm_at <- None;
          1
        | Some _ | None ->
          proc.state <- Process.Yielded;
          0))
    | Userland.Subscribe { driver; upcall_id } -> (
      match driver_grant t proc driver with
      | Error _ -> Userland.failure
      | Ok _ ->
        proc.subscriptions <- (driver, upcall_id) :: List.remove_assoc driver proc.subscriptions;
        (match Hashtbl.find_opt t.capsules driver with
        | Some capsule ->
          ensure_capsules_initialized t;
          capsule.Capsule_intf.cap_subscribed (make_handle t proc driver) ~upcall_id
        | None -> ());
        Userland.success)
    | Userland.Command { driver; cmd; arg1; arg2 } -> handle_command t proc ~driver ~cmd ~arg1 ~arg2
    | Userland.Allow_ro { driver; addr; len } -> (
      match
        Hooks.measure t.hooks "build_readonly_buffer" @@ fun () ->
        MM.build_readonly_buffer proc.alloc ~addr ~len
      with
      | Ok buf ->
        proc.allowed_ro <- (driver, buf) :: List.remove_assoc driver proc.allowed_ro;
        (match Hashtbl.find_opt t.capsules driver with
        | Some capsule ->
          ensure_capsules_initialized t;
          capsule.Capsule_intf.cap_allowed_ro (make_handle t proc driver) buf
        | None -> ());
        Userland.success
      | Error _ -> Userland.failure)
    | Userland.Allow_rw { driver; addr; len } -> (
      match
        Hooks.measure t.hooks "build_readwrite_buffer" @@ fun () ->
        MM.build_readwrite_buffer proc.alloc ~addr ~len
      with
      | Ok buf ->
        proc.allowed_rw <- (driver, buf) :: List.remove_assoc driver proc.allowed_rw;
        (match Hashtbl.find_opt t.capsules driver with
        | Some capsule ->
          ensure_capsules_initialized t;
          capsule.Capsule_intf.cap_allowed_rw (make_handle t proc driver) buf
        | None -> ());
        Userland.success
      | Error _ -> Userland.failure)
    | Userland.Memop { op; arg } -> handle_memop t proc ~op ~arg

  (* --- running one slice of a process --- *)

  type slice_end =
    | Slice_syscall of Userland.call
    | Slice_quantum
    | Slice_exit of int
    | Slice_fault of string

  let charge n = Cycles.tick ~n Cycles.global

  let exec_action t (proc : proc) action =
    match action with
    | Userland.Load8 a ->
      charge Cycles.mem;
      Memory.load8 t.mem a
    | Userland.Store8 (a, v) ->
      charge Cycles.mem;
      Memory.store8 t.mem a v;
      0
    | Userland.Load32 a ->
      charge Cycles.mem;
      Memory.load32 t.mem a
    | Userland.Store32 (a, v) ->
      charge Cycles.mem;
      Memory.store32 t.mem a v;
      0
    | Userland.Compute n ->
      charge (max n 1);
      0
    | Userland.Print s ->
      charge (String.length s);
      Process.print proc s;
      0
    | Userland.Syscall _ | Userland.Exit _ -> assert false

  let cycles_per_quantum_unit = 16

  let run_actions t (proc : proc) ~perturb =
    match perturb with
    | Chaos_intf.P_spurious_systick ->
      (* the timer fires the instant the process resumes: the slice ends
         after zero user actions — a lost quantum, otherwise benign *)
      charge Cycles.exception_entry;
      Slice_quantum
    | Chaos_intf.P_none | Chaos_intf.P_spurious_svc | Chaos_intf.P_drop_systick
    | Chaos_intf.P_corrupt_exc_return _ ->
      (* a spurious SVC is architecturally absorbed: it only costs the
         process an exception round-trip of its own time *)
      if perturb = Chaos_intf.P_spurious_svc then charge (2 * Cycles.exception_entry);
      let dropped = perturb = Chaos_intf.P_drop_systick in
      let cooperative = t.sched = Cooperative in
      (* With a SysTick present the quantum is a cycle budget counted by the
         timer hardware model; otherwise an action budget. A dropped SysTick
         means the timer never fires this slice: the process keeps the CPU
         until it syscalls or the (much larger) fallback budget runs out —
         the overrun the software watchdog exists to catch. *)
      let expired =
        match t.systick with
        | Some st when (not cooperative) && not dropped ->
          Mpu_hw.Systick.start st ~reload:(t.quantum * cycles_per_quantum_unit) ~tickint:true;
          let last = ref (Cycles.read Cycles.global) in
          fun _budget ->
            let now = Cycles.read Cycles.global in
            Mpu_hw.Systick.advance st (now - !last);
            last := now;
            Mpu_hw.Systick.take_pending st
        | Some _ | None ->
          fun budget -> (not cooperative) && budget <= 0
      in
      let rec loop budget =
        if expired budget then Slice_quantum
        else
          match
            proc.Process.fed_inputs <- proc.last_result :: proc.Process.fed_inputs;
            proc.program proc.last_result
          with
          | Userland.Exit code -> Slice_exit code
          | Userland.Syscall call -> Slice_syscall call
          | action -> (
            match exec_action t proc action with
            | result ->
              proc.last_result <- result;
              loop (budget - 1)
            | exception Memory.Access_fault f ->
              Slice_fault
                (Printf.sprintf "mpu fault: %s at %s (%s)"
                   (match f.Memory.fault_access with
                   | Perms.Read -> "read"
                   | Perms.Write -> "write"
                   | Perms.Execute -> "execute")
                   (Word32.to_hex f.Memory.fault_addr)
                   f.Memory.fault_reason))
      in
      loop (if dropped then t.quantum * 4 else t.quantum)

  (* Configure the MPU for this process and enter it, run its actions, and
     return through the preemption path matching how the slice ended. *)
  let exc_num_for = function
    | Slice_syscall _ | Slice_exit _ -> Fluxarm.Exn.exc_svc
    | Slice_quantum -> Fluxarm.Exn.exc_systick
    | Slice_fault _ -> 4 (* MemManage *)

  (* Fault inside the switch itself (e.g. a steered stack pointer):
     hardware would escalate; we restore a sane kernel context. *)
  let recover_cpu cpu ~recover_msp (f : Memory.fault) =
    Fluxarm.Cpu.set_mode cpu Fluxarm.Cpu.Thread;
    Fluxarm.Cpu.set_special_raw cpu Fluxarm.Regs.Control 0;
    Fluxarm.Cpu.set_special_raw cpu Fluxarm.Regs.Msp recover_msp;
    Slice_fault
      (Printf.sprintf "fault during context switch at %s" (Word32.to_hex f.Memory.fault_addr))

  let run_slice t (proc : proc) =
    (match t.obs with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r ~tick:t.ticks (Obs.Event.Switch_to_user { pid = proc.Process.pid }));
    Hooks.measure t.hooks "setup_mpu" (fun () -> MM.configure_mpu t.hw proc.alloc);
    (* The scrubber's reference: the configuration just derived from the
       allocator, retained by the kernel (no modeled register reads). Any
       later disagreement of the live registers with this snapshot is
       out-of-band corruption. *)
    if t.scrub_every > 0 then t.expected_mpu <- MM.mpu_snapshot t.hw;
    (* Chaos injection point: mid-slice SEU faults land after the registers
       were programmed and before/while the process runs. *)
    let perturb =
      match t.chaos with
      | None -> Chaos_intf.P_none
      | Some ch -> ch.Chaos_intf.ch_pre_slice ~pid:proc.Process.pid ~tick:t.ticks
    in
    match perturb with
    | Chaos_intf.P_corrupt_exc_return v ->
      (* the exception return cannot complete: hardware escalates before any
         user action runs, and the kernel faults the process *)
      charge (2 * Cycles.exception_entry);
      Slice_fault (Printf.sprintf "chaos: corrupted EXC_RETURN %s" (Word32.to_hex v))
    | Chaos_intf.P_none | Chaos_intf.P_spurious_systick | Chaos_intf.P_spurious_svc
    | Chaos_intf.P_drop_systick -> (
      match t.switcher with
      | Arm_switch cpu ->
        let recover_msp = Fluxarm.Cpu.get_special cpu Fluxarm.Regs.Msp in
        let finish reason =
          Fluxarm.Handlers.preempt_process cpu ~exc_num:(exc_num_for reason);
          Fluxarm.Handlers.switch_to_user_part2 cpu ~regs_base:proc.regs_base;
          proc.psp <- Fluxarm.Cpu.get_special cpu Fluxarm.Regs.Psp;
          reason
        in
        (try
           Fluxarm.Handlers.switch_to_user_part1 cpu ~process_sp:proc.psp
             ~regs_base:proc.regs_base;
           finish (run_actions t proc ~perturb)
         with Memory.Access_fault f -> recover_cpu cpu ~recover_msp f)
      | Arm_mc_switch (cpu, code) ->
        let recover_msp = Fluxarm.Cpu.get_special cpu Fluxarm.Regs.Msp in
        let finish reason =
          Fluxarm.Handlers_mc.preempt_process code cpu ~exc_num:(exc_num_for reason);
          Fluxarm.Handlers_mc.switch_to_user_part2 code cpu;
          proc.psp <- Fluxarm.Cpu.get_special cpu Fluxarm.Regs.Psp;
          reason
        in
        (try
           Fluxarm.Handlers_mc.switch_to_user_part1 code cpu ~process_sp:proc.psp
             ~regs_base:proc.regs_base;
           finish (run_actions t proc ~perturb)
         with Memory.Access_fault f -> recover_cpu cpu ~recover_msp f)
      | Sim_switch machine_mode ->
        charge (2 * Cycles.exception_entry);
        machine_mode := false;
        let reason = run_actions t proc ~perturb in
        machine_mode := true;
        charge (2 * Cycles.exception_entry);
        reason)

  (* A Tock-style process status dump, printed to the kernel console when a
     process faults (upstream prints this from the panic handler). *)
  let print_process_status t (proc : proc) =
    let b = Buffer.create 256 in
    Printf.bprintf b "App: %s   -   [%s]\n" proc.name (Process.state_to_string proc.state);
    Printf.bprintf b " Restart count: %d\n" proc.restarts;
    let row addr label = Printf.bprintf b "  %s | %-24s\n" (Word32.to_hex addr) label in
    row (MM.memory_start proc.alloc + MM.memory_size proc.alloc) "block end";
    row (MM.kernel_break proc.alloc) "kernel break (grants)";
    row (MM.app_break proc.alloc) "app break";
    row proc.psp "process stack pointer";
    row (MM.memory_start proc.alloc) "memory start";
    row (proc.flash.Loader.flash_start + proc.flash.Loader.flash_size) "flash end";
    row proc.flash.Loader.flash_start "flash start";
    log_console t (Buffer.contents b)

  (* Restart a faulted process: reset the break to its creation value,
     re-zero its RAM, synthesize a fresh initial frame, and run the program
     again from the top. Grants are kernel state and survive (Tock reuses
     the process's grant region on restart too). *)
  let restart_process t (proc : proc) factory =
    proc.restarts <- proc.restarts + 1;
    proc.recent_faults <- proc.recent_faults + 1;
    proc.healthy_since <- t.ticks;
    proc.run_since_syscall <- 0;
    (match MM.brk proc.alloc t.hw ~new_app_break:proc.initial_break with
    | Ok _ | Error _ -> ());
    let start = MM.memory_start proc.alloc in
    Cycles.tick ~n:((proc.initial_break - start) / 4 * Cycles.mem) Cycles.global;
    let a = ref start in
    while !a < proc.initial_break do
      Memory.write32 t.mem !a 0;
      a := !a + 4
    done;
    let psp = proc.initial_break - (4 * Fluxarm.Exn.frame_words) in
    Memory.write32 t.mem (psp + 20) initial_lr;
    Memory.write32 t.mem (psp + 24) proc.flash.Loader.entry;
    Memory.write32 t.mem (psp + 28) initial_psr;
    proc.psp <- psp;
    proc.program <- factory ();
    proc.fed_inputs <- [];
    proc.last_result <- 0;
    proc.allowed_ro <- [];
    proc.allowed_rw <- [];
    proc.subscriptions <- [];
    proc.alarm_at <- None;
    Queue.clear proc.pending_upcalls;
    proc.state <- Process.Ready;
    trace_event t (Trace.Restarted proc.Process.pid);
    Obs.Metrics.incr t.metrics "kernel/restarts";
    (match t.obs with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r ~tick:t.ticks (Obs.Event.Restarted { pid = proc.Process.pid }));
    log_console t (Printf.sprintf "process %s restarted (attempt %d)" proc.name proc.restarts)

  let handle_fault t (proc : proc) msg =
    trace_event t (Trace.Faulted { pid = proc.Process.pid; reason = msg });
    Obs.Metrics.incr t.metrics "kernel/faults";
    (match t.obs with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r ~tick:t.ticks
        (Obs.Event.Faulted { pid = proc.Process.pid; reason = msg }));
    proc.state <- Process.Faulted msg;
    log_console t (Printf.sprintf "process %s faulted: %s" proc.name msg);
    print_process_status t proc;
    (* Tell every capsule before the fault policy runs: a peer blocked on
       this process (IPC) must be woken with an error, not left wedged. *)
    Hashtbl.iter
      (fun _ (c : Capsule_intf.t) -> c.Capsule_intf.cap_proc_died ~pid:proc.Process.pid)
      t.capsules;
    (* Forgive one recent fault per [span] healthy ticks since the last
       fault accounting, so a long-lived process that faults rarely never
       exhausts its budget. Lazy: runs only when a fault needs the count. *)
    let decay span =
      if span > 0 && proc.recent_faults > 0 then begin
        let d = min proc.recent_faults ((t.ticks - proc.healthy_since) / span) in
        if d > 0 then begin
          proc.recent_faults <- proc.recent_faults - d;
          proc.healthy_since <- proc.healthy_since + (d * span)
        end
      end
    in
    let exhausted () =
      log_console t (Printf.sprintf "process %s: restart budget exhausted" proc.name)
    in
    match (proc.fault_policy, proc.program_factory) with
    | Process.Panic, _ -> raise (Panic (Printf.sprintf "process %s: %s" proc.name msg))
    | Process.Stop, _ -> ()
    | Process.Restart { max_restarts }, Some factory ->
      decay t.restart_decay_span;
      if proc.recent_faults < max_restarts then restart_process t proc factory
      else exhausted ()
    | Process.Restart_backoff { max_restarts; base_delay; max_delay; decay_span }, Some factory
      ->
      ignore factory;
      decay decay_span;
      if proc.recent_faults < max_restarts then begin
        (* deterministic exponential backoff: base, 2*base, 4*base, ...
           capped at [max_delay]; the restart itself runs from [wake_alarms]
           when the delay elapses *)
        let delay = min max_delay (base_delay * (1 lsl min proc.recent_faults 20)) in
        proc.restart_at <- Some (t.ticks + max delay 1);
        log_console t
          (Printf.sprintf "process %s: restart scheduled in %d ticks (backoff)" proc.name
             (max delay 1))
      end
      else exhausted ()
    | (Process.Restart _ | Process.Restart_backoff _), None -> exhausted ()

  (* The MPU config scrubber (every [scrub_every] context switches): read
     the live registers back and compare them word-for-word against the
     snapshot taken right after [configure_mpu]. Any disagreement is
     out-of-band corruption — the allocator's view and the hardware have
     diverged without the kernel writing anything. Runs at slice end,
     {e before} [disable_mpu] and before the next switch would silently
     rewrite (and thus heal) every slot. *)
  let scrub_check t (proc : proc) slice =
    t.switch_count <- t.switch_count + 1;
    if t.switch_count mod t.scrub_every <> 0 then slice
    else begin
      Obs.Metrics.incr t.metrics "scrub/checks";
      let live = MM.mpu_snapshot t.hw in
      (* the scrubber's modeled cost: one register read per snapshot word *)
      charge (List.length live * Cycles.mem);
      if live = t.expected_mpu then slice
      else begin
        let mismatched =
          List.fold_left2 (fun n a b -> if a = b then n else n + 1) 0 live t.expected_mpu
        in
        Obs.Metrics.incr t.metrics "scrub/detections";
        let latency =
          match t.chaos with
          | Some ({ Chaos_intf.ch_mpu_injected_at = Some at; _ } as ch) ->
            ch.Chaos_intf.ch_mpu_injected_at <- None;
            Cycles.read Cycles.global - at
          | Some _ | None -> 0
        in
        Obs.Metrics.observe (Obs.Metrics.hist t.metrics "scrub/detect_latency_cycles") latency;
        let repaired = t.scrub_policy = `Repair in
        (match t.obs with
        | None -> ()
        | Some r ->
          Obs.Recorder.record r ~tick:t.ticks
            (Obs.Event.Mpu_scrub { pid = proc.Process.pid; mismatched; repaired; latency }));
        if repaired then begin
          Obs.Metrics.incr t.metrics "scrub/repairs";
          (* Repair through the generic register-file restore hook: only
             the mismatched words are rewritten, so one corrupted register
             costs one register write — not a full reconfiguration. *)
          Hooks.measure t.hooks "mpu_repair" (fun () -> MM.mpu_restore t.hw t.expected_mpu);
          slice
        end
        else
          match slice with
          | Slice_fault _ -> slice (* the genuine fault takes precedence *)
          | Slice_syscall _ | Slice_quantum | Slice_exit _ ->
            Slice_fault
              (Printf.sprintf "mpu register corruption detected by scrubber (%d words)"
                 mismatched)
      end
    end

  (* The software watchdog: account model cycles a process runs without
     making a syscall; past the budget, fault it. Catches the runaway the
     dropped-SysTick fault creates — a process that never yields back. *)
  let watchdog_check t (proc : proc) slice ~ran =
    (match slice with
    | Slice_syscall _ -> proc.Process.run_since_syscall <- 0
    | Slice_quantum | Slice_exit _ | Slice_fault _ ->
      proc.Process.run_since_syscall <- proc.Process.run_since_syscall + ran);
    match slice with
    | Slice_quantum when proc.Process.run_since_syscall > t.watchdog ->
      let ran_total = proc.Process.run_since_syscall in
      proc.Process.run_since_syscall <- 0;
      Obs.Metrics.incr t.metrics "watchdog/fired";
      (match t.obs with
      | None -> ()
      | Some r ->
        Obs.Recorder.record r ~tick:t.ticks
          (Obs.Event.Watchdog_fired { pid = proc.Process.pid; ran = ran_total }));
      Slice_fault
        (Printf.sprintf "watchdog: %d syscall-less cycles exceed budget %d" ran_total
           t.watchdog)
    | Slice_syscall _ | Slice_quantum | Slice_exit _ | Slice_fault _ -> slice

  let step_process t (proc : proc) =
    trace_event t (Trace.Scheduled proc.Process.pid);
    (match t.obs with
    | None -> ()
    | Some r ->
      Obs.Recorder.record r ~tick:t.ticks (Obs.Event.Scheduled { pid = proc.Process.pid }));
    proc.Process.slices <- proc.Process.slices + 1;
    let slice, ran =
      if t.watchdog > 0 then Cycles.measure Cycles.global (fun () -> run_slice t proc)
      else (run_slice t proc, 0)
    in
    let slice = if t.scrub_every > 0 then scrub_check t proc slice else slice in
    (* back in the kernel: enforcement off until the next switch (§2.1) *)
    MM.disable_mpu t.hw;
    let slice = if t.watchdog > 0 then watchdog_check t proc slice ~ran else slice in
    match slice with
    | Slice_syscall call ->
      proc.Process.syscall_count <- proc.Process.syscall_count + 1;
      Obs.Metrics.incr t.metrics "kernel/syscalls";
      let result, latency = Cycles.measure Cycles.global (fun () -> handle_syscall t proc call) in
      Obs.Metrics.observe t.syscall_hists.(syscall_kind call) latency;
      trace_event t (Trace.Syscall { pid = proc.Process.pid; call; result });
      (match t.obs with
      | None -> ()
      | Some r ->
        Obs.Recorder.record r ~tick:t.ticks
          (Obs.Event.Syscall
             { pid = proc.Process.pid; call = syscall_kind_names.(syscall_kind call); result }));
      proc.last_result <- result
    | Slice_quantum -> ()
    | Slice_exit code ->
      proc.state <- Process.Exited code;
      trace_event t (Trace.Exited { pid = proc.Process.pid; code });
      (match t.obs with
      | None -> ()
      | Some r ->
        Obs.Recorder.record r ~tick:t.ticks (Obs.Event.Exited { pid = proc.Process.pid; code }));
      log_console t (Printf.sprintf "process %s exited with %d" proc.name code);
      Hashtbl.iter
        (fun _ (c : Capsule_intf.t) -> c.Capsule_intf.cap_proc_died ~pid:proc.Process.pid)
        t.capsules
    | Slice_fault msg -> handle_fault t proc msg

  (* --- the main scheduler loop --- *)

  let wake_alarms t =
    (* deferred (backoff) restarts whose delay has elapsed *)
    List.iter
      (fun (p : proc) ->
        match (p.Process.restart_at, p.Process.program_factory) with
        | Some due, Some factory when due <= t.ticks ->
          p.Process.restart_at <- None;
          restart_process t p factory
        | Some due, None when due <= t.ticks -> p.Process.restart_at <- None
        | (Some _ | None), _ -> ())
      t.procs;
    List.iter
      (fun (p : proc) ->
        (match Queue.take_opt p.Process.pending_upcalls with
        | Some (_id, arg) when p.Process.state = Process.Yielded ->
          p.Process.state <- Process.Ready;
          p.Process.last_result <- arg
        | Some pending -> Queue.push pending p.Process.pending_upcalls
        | None -> ());
        match (p.Process.state, p.Process.alarm_at) with
        | Process.Yielded, Some due when due <= t.ticks ->
          p.Process.state <- Process.Ready;
          p.Process.alarm_at <- None;
          p.Process.last_result <- 1
        | (Process.Ready | Process.Yielded | Process.Faulted _ | Process.Exited _), _ -> ())
      t.procs

  let has_future_work t =
    List.exists
      (fun (p : proc) ->
        Process.is_runnable p
        || p.Process.restart_at <> None
        || p.Process.state = Process.Yielded
           && (p.Process.alarm_at <> None
              || (not (Queue.is_empty p.Process.pending_upcalls))
              || Hashtbl.length t.capsules > 0))
      t.procs
    || Hashtbl.fold
         (fun _ (c : Capsule_intf.t) acc -> acc || c.Capsule_intf.cap_has_work ())
         t.capsules false

  let run t ~max_ticks =
    let deadline = t.ticks + max_ticks in
    ensure_capsules_initialized t;
    while t.ticks < deadline && has_future_work t do
      t.ticks <- t.ticks + 1;
      (match t.chaos with None -> () | Some ch -> ch.Chaos_intf.ch_tick ~tick:t.ticks);
      Hashtbl.iter (fun _ (c : Capsule_intf.t) -> c.Capsule_intf.cap_tick ~now:t.ticks) t.capsules;
      wake_alarms t;
      let runnable = List.filter Process.is_runnable t.procs in
      (match (t.sched, runnable) with
      | _, [] -> () (* idle tick: only the timer advances *)
      | (Round_robin | Cooperative), _ ->
        List.iter (fun p -> if Process.is_runnable p then step_process t p) runnable
      | Priority prio, p0 :: rest ->
        (* only the highest-priority runnable process gets the CPU *)
        let best =
          List.fold_left
            (fun best p ->
              if prio p.Process.pid < prio best.Process.pid then p else best)
            p0 rest
        in
        step_process t best);
      ()
    done

  (* --- end-to-end isolation checking (§4.3 correspondence, from outside) --- *)

  let normalize ranges =
    let nonempty = List.filter (fun r -> not (Range.is_empty r)) ranges in
    let sorted = List.sort (fun a b -> compare (Range.start a) (Range.start b)) nonempty in
    List.fold_left
      (fun acc r ->
        match acc with
        | prev :: rest when Range.start r <= Range.end_ prev ->
          Range.of_bounds ~lo:(Range.start prev) ~hi:(max (Range.end_ prev) (Range.end_ r))
          :: rest
        | _ -> r :: acc)
      [] sorted
    |> List.rev

  let ranges_subset sub super =
    let super = normalize super in
    List.for_all
      (fun r ->
        Range.is_empty r || List.exists (fun s -> Range.contains_range s r) super)
      (normalize sub)

  (** Check that what the hardware currently enforces for this process is
      exactly bounded by the kernel's logical view: every hardware-readable
      or writable byte lies inside the process's accessible ranges. Call
      after [configure_mpu] (tests do). *)
  let isolation_ok t (proc : proc) =
    MM.configure_mpu t.hw proc.alloc;
    let logical = MM.accessible proc.alloc in
    let hw_r = MM.hw_accessible t.hw Perms.Read in
    let hw_w = MM.hw_accessible t.hw Perms.Write in
    let ram = MM.accessible proc.alloc |> List.filter (fun r -> Layout.in_sram (Range.start r)) in
    ranges_subset hw_r logical && ranges_subset hw_w ram

  let mem_stats (proc : proc) =
    let total = MM.memory_size proc.alloc in
    let app = MM.app_break proc.alloc - MM.memory_start proc.alloc in
    let grant = MM.memory_start proc.alloc + total - MM.kernel_break proc.alloc in
    { Instance.total; app; grant; unused = total - app - grant }

  (* One snapshot subsuming every scattered [*_stats] accessor: the live
     registry (syscall-latency histograms, fault/restart/syscall counters),
     the Figure 11 per-method cycle rows, the bus and instruction caches
     (flagged [host] — they describe the simulator, not the simulated
     machine, so determinism comparisons exclude them via
     [Obs.Metrics.model_only]) and per-process memory gauges including the
     high-water mark. *)
  let metrics_snapshot t =
    let open Obs.Metrics in
    let hooks_rows =
      List.concat_map
        (fun (m, calls, cycles) ->
          [ c ("hooks/" ^ m ^ "/calls") calls; c ("hooks/" ^ m ^ "/cycles") cycles ])
        (Hooks.rows t.hooks)
    in
    let dc_hits, dc_misses = Memory.cache_stats t.mem in
    let bus =
      [
        c ~host:true "bus/decision_cache/hits" dc_hits;
        c ~host:true "bus/decision_cache/misses" dc_misses;
      ]
    in
    let icache =
      match t.switcher with
      | Arm_switch cpu | Arm_mc_switch (cpu, _) ->
        let ic = Fluxarm.Cpu.icache cpu in
        let s = Fluxarm.Icache.stats ic in
        let th = Fluxarm.Icache.trace_len_summary ic in
        [
          c ~host:true "icache/hits" s.Fluxarm.Icache.hits;
          c ~host:true "icache/misses" s.Fluxarm.Icache.misses;
          c ~host:true "icache/cached_instructions" s.Fluxarm.Icache.cached;
          c ~host:true "icache/total_instructions" s.Fluxarm.Icache.total;
          c ~host:true "icache/link_hits" s.Fluxarm.Icache.link_hits;
          c ~host:true "icache/link_flushes" s.Fluxarm.Icache.link_flushes;
          c ~host:true "icache/traces_entered" s.Fluxarm.Icache.traces;
          g ~host:true "icache/avg_trace_len_x100"
            (if s.Fluxarm.Icache.traces = 0 then 0
             else 100 * s.Fluxarm.Icache.trace_blocks / s.Fluxarm.Icache.traces);
          Obs.Metrics.h ~host:true "icache/trace_len" ~count:th.Fluxarm.Icache.th_count
            ~sum:th.Fluxarm.Icache.th_sum ~vmin:th.Fluxarm.Icache.th_min
            ~vmax:th.Fluxarm.Icache.th_max ~buckets:th.Fluxarm.Icache.th_buckets;
        ]
        @
        (* the fuzzer's coverage bitmap, host-flagged like every other
           cache observation: all zero unless [Icache.set_coverage] *)
        (let cc = Fluxarm.Icache.cov_counts ic in
         [
           c ~host:true "cov/blocks_lit" cc.Fluxarm.Icache.cc_blocks_lit;
           c ~host:true "cov/edges_lit" cc.Fluxarm.Icache.cc_edges_lit;
           c ~host:true "cov/block_hits" cc.Fluxarm.Icache.cc_block_hits;
           c ~host:true "cov/edge_hits" cc.Fluxarm.Icache.cc_edge_hits;
         ])
      | Sim_switch _ -> []
    in
    let obs_rows =
      match t.obs with
      | None -> []
      | Some r ->
        [
          c ~host:true "obs/recorder/recorded" (Obs.Recorder.recorded r);
          c ~host:true "obs/recorder/dropped" (Obs.Recorder.dropped r);
        ]
    in
    let chaos_rows =
      match t.chaos with
      | None -> []
      | Some ch -> [ c ~host:true "chaos/injected" ch.Chaos_intf.ch_injected ]
    in
    let kernel = [ g "kernel/ticks" t.ticks; g "kernel/processes" (List.length t.procs) ] in
    let per_proc =
      List.concat_map
        (fun (p : proc) ->
          let s = mem_stats p in
          let pre = Printf.sprintf "proc/%d/" p.Process.pid in
          [
            c (pre ^ "slices") p.Process.slices;
            c (pre ^ "syscalls") p.Process.syscall_count;
            c (pre ^ "restarts") p.Process.restarts;
            g (pre ^ "mem_total") s.Instance.total;
            g (pre ^ "mem_app") s.Instance.app;
            g (pre ^ "mem_grant") s.Instance.grant;
            g (pre ^ "mem_unused") s.Instance.unused;
            g (pre ^ "mem_watermark") p.Process.mem_watermark;
          ])
        t.procs
    in
    sorted
      (snapshot t.metrics @ hooks_rows @ bus @ icache @ obs_rows @ chaos_rows @ kernel
     @ per_proc
      @ Obs.Metrics.host_entries () (* process-global host counters (fleet) *))

  (* --- whole-kernel snapshot (the board snapshot subsystem's kernel
     component) ---

     Everything restores {e in place}: the same [proc] records, the same
     allocator objects, the same hooks/metrics/recorder/trace structures —
     so process handles held inside capsule state (alarm queues, button
     listeners) remain valid across a restore, and the capsules' own state
     rides along through their [cap_snapshot] hooks. Programs are
     deterministic closures; they are rebuilt from [program_factory] by
     replaying the fed-input log. *)

  type proc_snapshot = {
    ps_proc : proc;
    ps_state : Process.state;
    ps_program : Userland.program;
    ps_fed_inputs : int list;
    ps_psp : Word32.t;
    ps_last_result : Word32.t;
    ps_allowed_ro : (int * Range.t) list;
    ps_allowed_rw : (int * Range.t) list;
    ps_subscriptions : (int * int) list;
    ps_alarm_at : int option;
    ps_grants : (int * Word32.t) list;
    ps_pending : (int * int) Queue.t;
    ps_output : string;
    ps_alloc : MM.alloc_snapshot;
    ps_restarts : int;
    ps_recent_faults : int;
    ps_healthy_since : int;
    ps_restart_at : int option;
    ps_run_since_syscall : int;
    ps_slices : int;
    ps_syscall_count : int;
    ps_mem_watermark : int;
  }

  type snapshot = {
    k_procs : proc_snapshot list;
    k_next_pid : int;
    k_flash_cursor : Word32.t;
    k_ram_cursor : Word32.t;
    k_ticks : int;
    k_console : string;
    k_capsules_initialized : bool;
    k_switch_count : int;
    k_expected_mpu : int list;
    k_hooks : (string * int * int) list;
    k_metrics : Obs.Metrics.captured;
    k_obs : Obs.Recorder.captured option;
    k_trace : (Trace.entry option array * int) option;
    k_capsules : (string * (unit -> unit)) list;  (** capsule restore thunks *)
    k_chaos : (int option * int) option;  (** (ch_mpu_injected_at, ch_injected) *)
    k_cycles : int;  (** the global model-cycle counter *)
  }

  let capture_proc (proc : proc) =
    {
      ps_proc = proc;
      ps_state = proc.Process.state;
      ps_program = proc.Process.program;
      ps_fed_inputs = proc.Process.fed_inputs;
      ps_psp = proc.Process.psp;
      ps_last_result = proc.Process.last_result;
      ps_allowed_ro = proc.Process.allowed_ro;
      ps_allowed_rw = proc.Process.allowed_rw;
      ps_subscriptions = proc.Process.subscriptions;
      ps_alarm_at = proc.Process.alarm_at;
      ps_grants = proc.Process.grants;
      ps_pending = Queue.copy proc.Process.pending_upcalls;
      ps_output = Buffer.contents proc.Process.output;
      ps_alloc = MM.capture_alloc proc.Process.alloc;
      ps_restarts = proc.Process.restarts;
      ps_recent_faults = proc.Process.recent_faults;
      ps_healthy_since = proc.Process.healthy_since;
      ps_restart_at = proc.Process.restart_at;
      ps_run_since_syscall = proc.Process.run_since_syscall;
      ps_slices = proc.Process.slices;
      ps_syscall_count = proc.Process.syscall_count;
      ps_mem_watermark = proc.Process.mem_watermark;
    }

  let restore_proc ps =
    let proc = ps.ps_proc in
    proc.Process.state <- ps.ps_state;
    (match proc.Process.program_factory with
    | Some factory ->
      (* rebuild the program closure at its captured point: fresh closure,
         replay the captured input log oldest-first *)
      let p = factory () in
      List.iter (fun input -> ignore (p input)) (List.rev ps.ps_fed_inputs);
      proc.Process.program <- p
    | None ->
      (* no factory to rebuild from: share the captured closure. Exact as
         long as the program was never stepped between capture and restore
         (the pristine post-boot snapshots campaigns fork from); campaign
         workloads always load with factories. *)
      proc.Process.program <- ps.ps_program);
    proc.Process.fed_inputs <- ps.ps_fed_inputs;
    proc.Process.psp <- ps.ps_psp;
    proc.Process.last_result <- ps.ps_last_result;
    proc.Process.allowed_ro <- ps.ps_allowed_ro;
    proc.Process.allowed_rw <- ps.ps_allowed_rw;
    proc.Process.subscriptions <- ps.ps_subscriptions;
    proc.Process.alarm_at <- ps.ps_alarm_at;
    proc.Process.grants <- ps.ps_grants;
    Queue.clear proc.Process.pending_upcalls;
    Queue.iter (fun e -> Queue.push e proc.Process.pending_upcalls) ps.ps_pending;
    Buffer.clear proc.Process.output;
    Buffer.add_string proc.Process.output ps.ps_output;
    MM.restore_alloc proc.Process.alloc ps.ps_alloc;
    proc.Process.restarts <- ps.ps_restarts;
    proc.Process.recent_faults <- ps.ps_recent_faults;
    proc.Process.healthy_since <- ps.ps_healthy_since;
    proc.Process.restart_at <- ps.ps_restart_at;
    proc.Process.run_since_syscall <- ps.ps_run_since_syscall;
    proc.Process.slices <- ps.ps_slices;
    proc.Process.syscall_count <- ps.ps_syscall_count;
    proc.Process.mem_watermark <- ps.ps_mem_watermark

  let capture t =
    {
      k_procs = List.map capture_proc t.procs;
      k_next_pid = t.next_pid;
      k_flash_cursor = t.flash_cursor;
      k_ram_cursor = t.ram_cursor;
      k_ticks = t.ticks;
      k_console = Buffer.contents t.console;
      k_capsules_initialized = t.capsules_initialized;
      k_switch_count = t.switch_count;
      k_expected_mpu = t.expected_mpu;
      k_hooks = Hooks.capture t.hooks;
      k_metrics = Obs.Metrics.capture t.metrics;
      k_obs = Option.map Obs.Recorder.capture t.obs;
      k_trace = Option.map Trace.capture t.trace;
      k_capsules =
        Hashtbl.fold
          (fun _ (c : Capsule_intf.t) acc ->
            match c.Capsule_intf.cap_snapshot with
            | None -> acc
            | Some s -> (s.Capsule_intf.sn_name, s.Capsule_intf.sn_capture ()) :: acc)
          t.capsules []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      k_chaos =
        Option.map
          (fun ch -> (ch.Chaos_intf.ch_mpu_injected_at, ch.Chaos_intf.ch_injected))
          t.chaos;
      k_cycles = Cycles.read Cycles.global;
    }

  let restore t s =
    List.iter restore_proc s.k_procs;
    (* processes created after the capture are dropped; the captured ones
       are the same records, restored in place above *)
    t.procs <- List.map (fun ps -> ps.ps_proc) s.k_procs;
    t.next_pid <- s.k_next_pid;
    t.flash_cursor <- s.k_flash_cursor;
    t.ram_cursor <- s.k_ram_cursor;
    t.ticks <- s.k_ticks;
    Buffer.clear t.console;
    Buffer.add_string t.console s.k_console;
    t.capsules_initialized <- s.k_capsules_initialized;
    t.switch_count <- s.k_switch_count;
    t.expected_mpu <- s.k_expected_mpu;
    Hooks.restore t.hooks s.k_hooks;
    Obs.Metrics.restore t.metrics s.k_metrics;
    (match (t.obs, s.k_obs) with
    | Some r, Some c -> Obs.Recorder.restore r c
    | (Some _ | None), _ -> ());
    (match (t.trace, s.k_trace) with
    | Some tr, Some c -> Trace.restore tr c
    | (Some _ | None), _ -> ());
    List.iter (fun (_, thunk) -> thunk ()) s.k_capsules;
    (match (t.chaos, s.k_chaos) with
    | Some ch, Some (at, injected) ->
      ch.Chaos_intf.ch_mpu_injected_at <- at;
      ch.Chaos_intf.ch_injected <- injected
    | (Some _ | None), _ -> ());
    Cycles.set Cycles.global s.k_cycles

  let fingerprint t =
    let h = Fp.seed in
    let h = Fp.int h t.ticks in
    let h = Fp.int h t.next_pid in
    let h = Fp.int h t.flash_cursor in
    let h = Fp.int h t.ram_cursor in
    let h = Fp.int h t.switch_count in
    let h = Fp.string h (Buffer.contents t.console) in
    let h = Fp.ints h t.expected_mpu in
    let h =
      List.fold_left
        (fun h (proc : proc) ->
          let h = Fp.int h proc.Process.pid in
          let h = Fp.string h (Process.state_to_string proc.Process.state) in
          let h = Fp.int h proc.Process.psp in
          let h = Fp.int h proc.Process.last_result in
          let h = Fp.int h (List.length proc.Process.fed_inputs) in
          let h =
            List.fold_left
              (fun h (d, r) -> Fp.int (Fp.int (Fp.int h d) (Range.start r)) (Range.size r))
              h
              (proc.Process.allowed_ro @ proc.Process.allowed_rw)
          in
          let h =
            List.fold_left (fun h (d, v) -> Fp.int (Fp.int h d) v) h
              (proc.Process.subscriptions @ proc.Process.grants)
          in
          let h = Fp.int h (Option.value proc.Process.alarm_at ~default:(-1)) in
          let h = Fp.int h (Option.value proc.Process.restart_at ~default:(-1)) in
          let h =
            Queue.fold (fun h (id, arg) -> Fp.int (Fp.int h id) arg) h
              proc.Process.pending_upcalls
          in
          let h = Fp.string h (Buffer.contents proc.Process.output) in
          let h = Fp.int h proc.Process.restarts in
          let h = Fp.int h proc.Process.slices in
          Fp.int h proc.Process.syscall_count)
        (Fp.int h (List.length t.procs))
        t.procs
    in
    let h =
      Hashtbl.fold
        (fun _ (c : Capsule_intf.t) acc ->
          match c.Capsule_intf.cap_snapshot with
          | None -> acc
          | Some s -> (s.Capsule_intf.sn_name, s.Capsule_intf.sn_fingerprint) :: acc)
        t.capsules []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.fold_left (fun h (name, fp) -> Fp.int64 (Fp.string h name) (fp ())) h
    in
    Fp.int h (Cycles.read Cycles.global)

  (* --- the type-erased view --- *)

  let instance t : Instance.t =
    let with_proc pid f = Option.map f (find_process t pid) in
    {
      Instance.kernel_name = name;
      load =
        (fun ~name ~payload ~program ~min_ram ~grant_reserve ~heap_headroom ->
          Result.map
            (fun (p : proc) -> p.Process.pid)
            (create_process t ~name ~payload ~program ~min_ram ~grant_reserve ~heap_headroom
               ()));
      load_factory =
        (fun ~name ~payload ~factory ~min_ram ->
          Result.map
            (fun (p : proc) -> p.Process.pid)
            (create_process t ~name ~payload ~program:(factory ()) ~min_ram
               ~program_factory:factory ()));
      procs = (fun () -> List.map (fun (p : proc) -> (p.Process.pid, p.Process.name)) t.procs);
      boot_load =
        (fun ~registry ~require_credentials ->
          List.length (load_processes t ~registry ~require_credentials ()));
      run = (fun ~max_ticks -> run t ~max_ticks);
      proc_output = (fun pid -> with_proc pid Process.output);
      proc_state = (fun pid -> with_proc pid (fun p -> Process.state_to_string p.Process.state));
      proc_exit =
        (fun pid ->
          Option.join
            (with_proc pid (fun (p : proc) ->
                 match p.Process.state with Process.Exited c -> Some c | _ -> None)));
      proc_faulted =
        (fun pid ->
          Option.value ~default:false
            (with_proc pid (fun (p : proc) ->
                 match p.Process.state with Process.Faulted _ -> true | _ -> false)));
      proc_mem_stats = (fun pid -> with_proc pid mem_stats);
      proc_isolation_ok =
        (fun pid -> Option.value ~default:false (with_proc pid (isolation_ok t)));
      proc_sbrk =
        (fun pid delta ->
          match find_process t pid with
          | None -> Error Kerror.No_such_process
          | Some p ->
            Hooks.measure t.hooks "brk" @@ fun () -> MM.sbrk p.Process.alloc t.hw ~delta);
      hooks = (fun () -> t.hooks);
      console = (fun () -> console_output t);
      ticks = (fun () -> t.ticks);
      icache_stats =
        (fun () ->
          match t.switcher with
          | Arm_switch cpu | Arm_mc_switch (cpu, _) ->
            Some (Fluxarm.Icache.stats (Fluxarm.Cpu.icache cpu))
          | Sim_switch _ -> None);
      icache =
        (fun () ->
          match t.switcher with
          | Arm_switch cpu | Arm_mc_switch (cpu, _) -> Some (Fluxarm.Cpu.icache cpu)
          | Sim_switch _ -> None);
      buscache_stats = (fun () -> Memory.cache_stats t.mem);
      metrics = (fun () -> metrics_snapshot t);
      obs = (fun () -> t.obs);
      reseed = (fun _ -> ()) (* only the board knows its seeded devices *);
      snap_target = None (* only the board knows its device complement *);
      regs =
        (fun () ->
          match t.switcher with
          | Arm_switch cpu | Arm_mc_switch (cpu, _) ->
            List.map
              (fun r ->
                (Format.asprintf "%a" Fluxarm.Regs.pp_gpr r,
                 Word32.to_hex (Fluxarm.Cpu.get cpu r)))
              Fluxarm.Regs.all_gprs
            @ [
                ("sp", Word32.to_hex (Fluxarm.Cpu.sp cpu));
                ("pc", Word32.to_hex (Fluxarm.Cpu.pc cpu));
              ]
          | Sim_switch _ -> []);
      mem_read = (fun ~addr ~len -> Memory.read_bytes t.mem addr len);
      mpu_describe = (fun () -> "") (* only the board knows the MPU model *);
    }
end
