(** The granular MPU abstraction (§3.5, Figures 3b and 5).

    Two module types replace Tock's monolithic trait: {!REGION_DESCRIPTOR}
    characterizes a single hardware-enforced region while hiding alignment,
    subregion and power-of-two details; {!MPU} creates and updates such
    regions and pushes them to hardware. The kernel's process allocator is a
    functor over {!MPU} (see {!App_mem_alloc}), giving the paper's
    hardware-agnostic allocation code.

    The monolithic interface Tock started from ({!MONOLITHIC}, Figure 3a) is
    also kept, both as the baseline for the evaluation and to demonstrate
    the entanglement/disagreement problems it causes. *)

(** The paper's [RegionDescriptor] trait (Figure 5) plus the associated
    refinements of §4.1 ([is_set], [matches], [overlaps], and the final
    [can_access] derived from them). *)
module type REGION_DESCRIPTOR = sig
  type t

  val empty : region_id:int -> t
  (** An unset region slot ([is_set] = false) occupying id [region_id]. *)

  val region_id : t -> int
  val is_set : t -> bool

  val start : t -> Word32.t option
  (** Accessible start. For Cortex-M this accounts for subregions (§3.5);
      for PMP it is the exact configured start. [None] when unset. *)

  val size : t -> int option
  (** Accessible size; [None] when unset. *)

  val overlaps : t -> lo:Word32.t -> hi:Word32.t -> bool
  (** Does the {e accessible} part of the region intersect the inclusive
      address interval [\[lo, hi\]]? Unset regions overlap nothing. *)

  val matches_perms : t -> Perms.t -> bool
  (** The associated refinement [matches(r, p)]: the region grants exactly
      the permissions [p]. Unset regions match nothing. *)

  val can_access : t -> start:Word32.t -> end_:Word32.t -> perms:Perms.t -> bool
  (** The final associated refinement of §4.1: set, spanning exactly
      [\[start, end_)], with permissions [perms]. *)

  val accessible_range : t -> Range.t option
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** The granular MPU trait (Figure 3b). Implementations deal exclusively
    with hardware constraints; they know nothing of process layout. *)
module type MPU = sig
  val arch_name : string

  module Region : REGION_DESCRIPTOR

  type hw
  (** The hardware register file this driver programs. *)

  val region_count : int
  (** Number of region slots (8 for Cortex-M, [entry_count] for PMP). *)

  val new_regions :
    max_region_id:int ->
    unalloc_start:Word32.t ->
    unalloc_size:int ->
    total_size:int ->
    perms:Perms.t ->
    (Region.t * Region.t) option
  (** Create up to two contiguous regions inside the available block,
      spanning {e at least} [total_size] bytes, satisfying the hardware's
      size/alignment constraints. The regions use ids [max_region_id - 1]
      and [max_region_id]. Postcondition (contract-checked in
      implementations): the first region is set, both lie inside the
      available block, they are contiguous, and their combined accessible
      size is at least [total_size]. *)

  val update_regions :
    max_region_id:int ->
    region_start:Word32.t ->
    available_size:int ->
    total_size:int ->
    perms:Perms.t ->
    (Region.t * Region.t) option
  (** Recreate the (up to) two RAM regions for a new total size starting at
      the fixed [region_start] — the [brk]/[sbrk] path. [available_size]
      bounds how far the accessible span may reach (the space below the
      current kernel break). *)

  val create_exact_region :
    region_id:int -> start:Word32.t -> size:int -> perms:Perms.t -> Region.t option
  (** A region covering exactly [\[start, start+size)] — used for process
      flash, whose placement the loader already aligned. [None] if the
      hardware cannot represent it exactly. *)

  val configure_mpu : hw -> Region.t array -> unit
  (** Write every region slot to the hardware registers. *)

  val enable : hw -> unit
  val disable : hw -> unit

  val accessible_ranges : hw -> Perms.access -> Range.t list
  (** What the hardware actually enforces — used to verify logical-MPU
      correspondence (§4.3) from the outside. *)

  val snapshot : hw -> int list
  (** The live register-file contents (every region/entry register plus the
      global enable state), as a flat word list. Two snapshots are equal iff
      the hardware would enforce the same configuration — the kernel's MPU
      config scrubber compares a snapshot taken right after
      {!configure_mpu} (the configuration derived from the allocator)
      against the live registers to detect corruption from outside the
      driver (SEU bit flips, injected faults). *)

  val restore : hw -> int list -> unit
  (** Write a {!snapshot}-shaped word list back through the register-write
      front door, touching only the registers whose live values differ —
      so a repair of one corrupted word costs one register write, and
      values the hardware would reject (malformed encodings, locked PMP
      entries) raise [Invalid_argument] exactly as a direct write would.
      This one hook serves both the kernel's config scrubber (repair =
      restore the expected snapshot) and the chaos engine's register
      corruptor (corrupt = restore a snapshot with one bit flipped),
      replacing the per-architecture copies both used to carry. *)
end

(** Tock's original monolithic MPU trait (Figure 3a): allocation and
    hardware configuration entangled in one interface. The [MpuConfig] is
    mutated in place and the intermediate layout results are discarded,
    which is precisely the {e disagreement} problem of §3.2. *)
module type MONOLITHIC = sig
  val arch_name : string

  type config
  type hw

  val new_config : unit -> config

  val allocate_app_mem_region :
    config:config ->
    unalloc_start:Word32.t ->
    unalloc_size:int ->
    min_size:int ->
    app_size:int ->
    kernel_size:int ->
    perms:Perms.t ->
    (Word32.t * int) option
  (** Returns only (start, total block size); the computed app/kernel break
      layout is discarded (Figure 4a). *)

  val update_app_mem_region :
    config:config ->
    new_app_break:Word32.t ->
    kernel_break:Word32.t ->
    perms:Perms.t ->
    (unit, unit) result

  val allocate_exact_region :
    config:config -> start:Word32.t -> size:int -> perms:Perms.t -> (unit, unit) result

  val configure_mpu : hw -> config -> unit
  val enable : hw -> unit
  val disable : hw -> unit
  val accessible_ranges : hw -> Perms.access -> Range.t list

  val snapshot : hw -> int list
  (** Live register-file contents, as in {!MPU.snapshot}. *)

  val restore : hw -> int list -> unit
  (** Diff-only front-door write-back of a {!snapshot}, as in
      {!MPU.restore}. *)

  val copy_config : config -> config
  (** A deep copy sharing no mutable state with the original — the
      snapshot subsystem captures the allocator's [config] with this. *)

  val blit_config : src:config -> dst:config -> unit
  (** Overwrite [dst] in place with [src]'s contents. Restoring through a
      blit (rather than swapping in the copy) keeps every alias to the
      original [config] valid. *)

  val enabled_subregions_end : config -> Word32.t option
  (** Explication hook (§3.4, step 1): expose where the hardware-enforced
      process-accessible RAM actually ends, so the verifier can state the
      postcondition that it never exceeds the kernel break. Upstream Tock
      had no such accessor — adding it is what made the grant-overlap bug
      specifiable. *)
end
