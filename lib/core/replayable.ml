(** The unified execution contract behind record/replay.

    Two things live here, both grown out of plumbing the campaign harnesses
    (fuzz, difftest, chaos, fleet, fuzzcov, fabric) each hand-rolled across
    PRs 5–9:

    - {!Exec}: the one parsed spelling of "how should a campaign obtain a
      board per cell" — boot fresh, fork a cached pristine image, or fork a
      pristine image overlaid from an on-disk snapshot. Replaces the
      divergent [--fork] / [--from-snapshot] / [~mode:`Boot|`Fork] booleans.
    - {!Runner}: the single fork-per-cell code path implementing an
      {!Exec.spec} on top of {!Snapshot.Registry}, so every harness shares
      one boot-once/restore-per-cell implementation instead of six.

    On top of those, a {e session} ({!t}) is the type-erased view the replay
    navigator drives: deterministic single-tick stepping, whole-board
    capture/restore, a fingerprint oracle, and the register/memory/MPU
    inspectors. {!of_instance} builds one from any board {!Instance.t} that
    carries a snapshot target. *)

(* --- execution specs --- *)

module Exec = struct
  type spec =
    | Boot  (** boot a fresh board for every cell *)
    | Fork  (** boot once per worker, fork the pristine image per cell *)
    | Snapshot_file of string
        (** like [Fork], but overlay this on-disk pristine snapshot onto the
            freshly-booted board before capturing the fork image *)

  let to_string = function
    | Boot -> "boot"
    | Fork -> "fork"
    | Snapshot_file p -> "snapshot:" ^ p

  let parse s =
    match s with
    | "boot" -> Ok Boot
    | "fork" -> Ok Fork
    | _ ->
      (match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "snapshot" ->
        let p = String.sub s (i + 1) (String.length s - i - 1) in
        if p = "" then Error "--exec snapshot: needs a file (snapshot:FILE)"
        else Ok (Snapshot_file p)
      | _ ->
        Error
          (Printf.sprintf "bad execution spec %S (expected boot | fork | snapshot:FILE)" s))

  (** Resolve the new [--exec] spec against the deprecated [--fork] /
      [--from-snapshot] aliases. The aliases still work — each prints a
      deprecation warning through [warn] (stderr by default) — but an
      explicit [--exec] wins over both. *)
  let of_flags ?(warn = fun m -> prerr_endline ("warning: " ^ m)) ~fork ~from_snapshot exec =
    match exec with
    | Some s -> parse s
    | None ->
      if from_snapshot <> None then
        warn "--from-snapshot is deprecated; use --exec snapshot:FILE";
      if fork then warn "--fork is deprecated; use --exec fork";
      (match from_snapshot with
      | Some p -> Ok (Snapshot_file p)
      | None -> Ok (if fork then Fork else Boot))
end

(* --- the shared fork-per-cell runner --- *)

module Runner = struct
  type t = {
    rn_exec : Exec.spec;
    rn_registry : Obj.t Snapshot.Registry.t;
        (** payloads are type-erased so one runner serves cells of any
            payload type; [cell] re-erases and un-erases on either side of
            the registry, which is safe because each key is only ever used
            with one payload type by construction. *)
    mutable rn_boots : int;  (** boots in [Boot] mode (registry counts its own) *)
  }

  let create ~exec () =
    { rn_exec = exec; rn_registry = Snapshot.Registry.create (); rn_boots = 0 }

  let exec t = t.rn_exec

  let boots t = t.rn_boots + Snapshot.Registry.boots t.rn_registry
  let forks t = Snapshot.Registry.forks t.rn_registry

  (** [cell t ~key ~boot f] runs one campaign cell: under [Boot] it boots a
      fresh board and applies [f]; under [Fork] it boots at most once per
      [key] (capturing the pristine post-boot image) and restores that image
      in front of [f]; under [Snapshot_file p] it additionally overlays the
      on-disk snapshot [p] onto the board post-boot, pre-capture, so every
      fork starts from the file's image. [boot] returns the payload and its
      snapshot target post-boot, pre-load; the target may be [None] only
      under [Boot], which never snapshots. *)
  let cell (type k a) t ~key ~(boot : unit -> k * Snapshot.target option) (f : k -> a) : a =
    let need = function
      | Some tgt -> tgt
      | None ->
        invalid_arg
          (Printf.sprintf
             "Replayable.Runner: %s: forked execution needs an instance with a snapshot \
              target"
             key)
    in
    match t.rn_exec with
    | Exec.Boot ->
      t.rn_boots <- t.rn_boots + 1;
      let payload, _ = boot () in
      f payload
    | Exec.Fork ->
      let e =
        Snapshot.Registry.find_or_boot t.rn_registry key ~boot:(fun () ->
            let payload, tgt = boot () in
            (Obj.repr payload, need tgt))
      in
      Snapshot.Registry.fork e (fun payload -> f (Obj.obj payload : k))
    | Exec.Snapshot_file path ->
      let e =
        Snapshot.Registry.find_or_boot t.rn_registry key ~boot:(fun () ->
            let payload, tgt = boot () in
            let tgt = need tgt in
            Snapshot.load tgt path;
            (Obj.repr payload, tgt))
      in
      Snapshot.Registry.fork e (fun payload -> f (Obj.obj payload : k))
end

(* --- replayable sessions --- *)

(** What stopped a session mid-step, recorded so stepping is total: after a
    crash, further [step]s are no-ops and the session state stays frozen at
    the crash point — exactly what the navigator wants to inspect. *)
type crash = { cr_tick : int; cr_reason : string }

type t = {
  rp_kind : string;  (** "board" | "fabric" | ... — what booted this session *)
  rp_name : string;  (** board (or topology) name *)
  rp_arch : string;
  rp_tick : unit -> int;
  rp_step : ticks:int -> unit;
      (** Advance up to [ticks] kernel ticks, deterministically. Totals:
          panics and verifier violations are caught, recorded in
          [rp_crash], and freeze the session. *)
  rp_crash : unit -> crash option;
  rp_capture : unit -> unit -> unit;
      (** Capture the whole board; the returned thunk restores it. *)
  rp_fingerprint : unit -> int64;  (** whole-board fingerprint oracle *)
  rp_reseed : int -> unit;
  rp_regs : unit -> (string * string) list;
  rp_mem_read : addr:int -> len:int -> string;
  rp_mpu : unit -> string;
  rp_events : unit -> Obs.Recorder.t option;
}

(** Build a session from a board instance. Requires the instance's snapshot
    target (every board constructor in {!Boards} attaches one); the target
    is what makes capture/restore and the fingerprint whole-board rather
    than kernel-only. *)
let of_instance ?(kind = "board") ~name (k : Instance.t) =
  let tgt =
    match k.Instance.snap_target with
    | Some t -> t
    | None ->
      invalid_arg
        (Printf.sprintf "Replayable.of_instance: instance %S has no snapshot target" name)
  in
  let crash = ref None in
  {
    rp_kind = kind;
    rp_name = name;
    rp_arch = tgt.Snapshot.tg_arch;
    rp_tick = (fun () -> k.Instance.ticks ());
    rp_step =
      (fun ~ticks ->
        if !crash = None then
          try k.Instance.run ~max_ticks:ticks with
          | Tock_cortexm_mpu.Kernel_panic msg ->
            crash := Some { cr_tick = k.Instance.ticks (); cr_reason = "panic: " ^ msg }
          | Verify.Violation.Violation v ->
            crash :=
              Some
                {
                  cr_tick = k.Instance.ticks ();
                  cr_reason = "violation: " ^ v.Verify.Violation.site;
                });
    rp_crash = (fun () -> !crash);
    rp_capture =
      (fun () ->
        let snap = Snapshot.capture tgt in
        let crash_at = !crash in
        fun () ->
          Snapshot.restore tgt snap;
          crash := crash_at);
    rp_fingerprint = (fun () -> Snapshot.fingerprint tgt);
    rp_reseed = k.Instance.reseed;
    rp_regs = k.Instance.regs;
    rp_mem_read = (fun ~addr ~len -> k.Instance.mem_read ~addr:(Word32.of_int addr) ~len);
    rp_mpu = k.Instance.mpu_describe;
    rp_events = k.Instance.obs;
  }
