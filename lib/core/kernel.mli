(** The kernel: process loading, syscall dispatch, scheduling and context
    switching — generic over the memory manager ({!Mm.S}), so the very same
    code runs as "Tock" (monolithic manager) and as "TickTock" (granular
    manager), on ARMv7-M or ARMv8-M (with the full FluxArm context switch,
    method-level or assembled Thumb-2 machine code) or on RISC-V PMP (with
    a modeled machine-mode switch).

    Scheduling is Tock's: single-threaded and event-driven. Each runnable
    process runs until it syscalls, faults, exits or exhausts its quantum
    (SysTick-driven preemption on the ARM boards). Capsules extend the
    driver space behind mediated process handles; fault policies decide
    what a fault costs; every scheduler-visible event can be traced. *)

(** Scheduling policy — the subset of Tock's scheduler zoo we model.
    [Round_robin] gives every runnable process one quantum-bounded slice per
    tick; [Cooperative] never preempts (a process runs until it syscalls,
    exits or faults); [Priority] runs only the highest-priority runnable
    process each tick (smaller number = higher priority), starving the
    rest — exactly the sharp edge Tock documents for it. *)
type sched =
  | Round_robin
  | Cooperative
  | Priority of (int -> int)  (** pid -> priority *)

type switcher =
  | Arm_switch of Fluxarm.Cpu.t
  | Arm_mc_switch of Fluxarm.Cpu.t * Fluxarm.Handlers_mc.t
      (** context switch through assembled Thumb-2 machine code *)
  | Sim_switch of bool ref  (** RISC-V: [true] while the kernel runs *)

module Make (MM : Mm.S) : sig
  type proc = MM.alloc Process.t

  type t

  exception Panic of string
  (** Raised when a process with the {!Process.Panic} fault policy faults:
      the modeled analog of a Tock kernel panic (the whole board halts). *)

  val name : string
  (** The memory manager's name, e.g. ["ticktock:cortex-m"]. *)

  val create :
    mem:Memory.t ->
    hw:MM.hw ->
    switcher:switcher ->
    ?quantum:int ->
    ?capsules:Capsule_intf.t list ->
    ?sched:sched ->
    ?syscall_filter:(int -> Userland.call -> bool) ->
    ?trace:Trace.t ->
    ?systick:Mpu_hw.Systick.t ->
    ?obs:Obs.Recorder.t ->
    ?chaos:Chaos_intf.t ->
    ?scrub_every:int ->
    ?scrub_policy:[ `Repair | `Fault ] ->
    ?watchdog:int ->
    ?restart_decay_span:int ->
    unit ->
    t
  (** Build a kernel on a machine. [quantum] is the scheduling quantum
      (default 64 action-units; when [systick] is supplied the quantum is a
      cycle budget counted down by the timer model). [syscall_filter] is
      Tock 2.x's per-process syscall-filter policy.

      Robustness knobs (all off by default, and when off the kernel's
      behavior is byte-for-byte that of a kernel built without them):
      [chaos] attaches fault-injection hooks (see {!Chaos_intf});
      [scrub_every] runs the MPU config scrubber every N context switches —
      at slice end the live MPU registers are compared word-for-word
      against the configuration derived from the allocator at switch-in,
      and on disagreement an {!Obs.Event.Mpu_scrub} event is emitted and
      the registers are re-synced ([`Repair], the default) or the process
      is faulted ([`Fault]); [watchdog] faults any process that runs more
      than that many model cycles without making a syscall;
      [restart_decay_span] makes the plain {!Process.Restart} budget
      forgive one past fault per that many healthy ticks. *)

  (** {1 Observation} *)

  val hooks : t -> Hooks.t
  (** The Figure 11 per-method cycle rows. *)

  val metrics_snapshot : t -> Obs.Metrics.snapshot
  (** The unified metrics snapshot: the live registry (per-call-kind
      syscall-latency histograms in model cycles, fault/restart/syscall
      counters) plus polled values — {!hooks} rows, bus and icache cache
      counters (flagged host-observational), kernel tick/process gauges and
      per-process memory gauges including the high-water mark. *)

  val obs_recorder : t -> Obs.Recorder.t option
  (** The cross-layer event recorder passed at {!create}, if any. *)

  val obs_sink : t -> Obs.Event.sink option
  (** A sink writing into {!obs_recorder} stamped with this kernel's tick
      counter — what board constructors wire into the machine layers
      (memory bus, MPU model, CPU). [None] when tracing is absent. *)

  val processes : t -> proc list
  val ticks : t -> int
  val find_process : t -> int -> proc option

  val console_output : t -> string
  (** The kernel console: exit/fault logs and process status dumps. *)

  val ps : t -> string
  (** A process-console style listing. *)

  (** {1 Processes} *)

  val create_process :
    t ->
    name:string ->
    payload:string ->
    program:Userland.program ->
    min_ram:int ->
    ?grant_reserve:int ->
    ?heap_headroom:int ->
    ?fault_policy:Process.fault_policy ->
    ?program_factory:(unit -> Userland.program) ->
    unit ->
    (proc, Kerror.t) result
  (** The Figure 11 [create] path: place the app image in flash, allocate
      its memory block (sized for [min_ram] plus [heap_headroom], with
      [grant_reserve] for the kernel), zero its RAM, allocate the
      stored-state grant and synthesize the initial exception frame.
      [program_factory] supplies fresh program state for the
      {!Process.Restart} fault policy. *)

  val load_processes :
    t ->
    registry:(string -> Userland.program option) ->
    ?require_credentials:bool ->
    unit ->
    proc list
  (** Tock-style boot loading: walk the app-flash region parsing TBF-style
      headers until the first invalid one, creating a process for every
      image whose name the registry can supply a program for. With
      [require_credentials], images whose integrity footer does not verify
      are rejected (and logged). *)

  (** {1 Execution} *)

  val run : t -> max_ticks:int -> unit
  (** The scheduler loop: per tick — capsule bottom halves, alarm/upcall
      wake-ups, then slices per the scheduling policy. Returns when
      [max_ticks] elapse or no process can make progress. *)

  val step_process : t -> proc -> unit
  (** One slice of one process (context switch in, actions, preemption
      path out, syscall dispatch / fault policy). *)

  val handle_syscall : t -> proc -> Userland.call -> Word32.t
  (** Direct syscall dispatch (tests and capsule development). *)

  (** {1 Isolation checking} *)

  val isolation_ok : t -> proc -> bool
  (** Configure the MPU for the process and check, from the outside, that
      everything the {e hardware model} would let the process read or
      write lies inside the kernel's logical view — the §4.3 logical/MPU
      correspondence as a runtime check. (False, by design, for the
      monolithic ARM kernels: Figure 4a's [+1] subregion over-enables.) *)

  val mem_stats : proc -> Instance.mem_stats

  (** {1 Snapshot}

      The kernel component of the board snapshot subsystem (see
      {!Snapshot}). [restore] writes everything back {e in place} — the
      same process records, allocator objects and observability structures
      — so references held by capsules and harnesses stay valid. Programs
      are rebuilt from their [program_factory] by replaying the fed-input
      log; capsule state rides along through each capsule's
      [cap_snapshot] hook; the global model-cycle counter is captured and
      restored too. *)

  type snapshot

  val capture : t -> snapshot
  val restore : t -> snapshot -> unit

  val fingerprint : t -> int64
  (** Digest of the kernel's live logical state (processes, capsule state,
      console, cycle counter) — the roundtrip oracle for snapshot tests. *)

  val instance : t -> Instance.t
  (** The type-erased view used by the evaluation harnesses. *)
end
