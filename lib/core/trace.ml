(** Kernel event tracing — the analog of Tock's debug/process-console
    tooling. A bounded ring buffer of scheduler-visible events: cheap
    enough to leave on, bounded so a chatty system cannot exhaust host
    memory, and invaluable when a fuzz seed or an example misbehaves. *)

type event =
  | Created of { pid : int; pname : string }
  | Scheduled of int  (** pid got a slice *)
  | Syscall of { pid : int; call : Userland.call; result : Word32.t }
  | Upcall of { pid : int; upcall_id : int; arg : int }
  | Faulted of { pid : int; reason : string }
  | Exited of { pid : int; code : int }
  | Restarted of int

type entry = { at : int; event : event }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;  (** total events ever recorded *)
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { capacity; ring = Array.make capacity None; next = 0 }

let record t ~tick event =
  t.ring.(t.next mod t.capacity) <- Some { at = tick; event };
  t.next <- t.next + 1

let recorded t = t.next
let dropped t = max 0 (t.next - t.capacity)

(* Snapshot support: entries are immutable, so a ring copy is deep. *)
let capture t = (Array.copy t.ring, t.next)

let restore t (ring, next) =
  Array.blit ring 0 t.ring 0 (min t.capacity (Array.length ring));
  t.next <- next

(** Events still in the ring, oldest first. *)
let events t =
  let start = max 0 (t.next - t.capacity) in
  List.filter_map
    (fun i -> t.ring.(i mod t.capacity))
    (List.init (t.next - start) (fun k -> start + k))

let pp_event ppf = function
  | Created { pid; pname } -> Format.fprintf ppf "created pid=%d %S" pid pname
  | Scheduled pid -> Format.fprintf ppf "scheduled pid=%d" pid
  | Syscall { pid; call; result } ->
    Format.fprintf ppf "syscall pid=%d %a -> %s" pid Userland.pp_call call
      (Word32.to_hex result)
  | Upcall { pid; upcall_id; arg } ->
    Format.fprintf ppf "upcall pid=%d id=%d arg=%d" pid upcall_id arg
  | Faulted { pid; reason } -> Format.fprintf ppf "FAULT pid=%d %s" pid reason
  | Exited { pid; code } -> Format.fprintf ppf "exited pid=%d code=%d" pid code
  | Restarted pid -> Format.fprintf ppf "restarted pid=%d" pid

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  if dropped t > 0 then Format.fprintf ppf "... %d earlier events dropped@," (dropped t);
  List.iter (fun { at; event } -> Format.fprintf ppf "[%6d] %a@," at pp_event event) (events t);
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

(** Convenience filters for tests and debugging sessions. *)
let faults t =
  List.filter_map
    (fun e -> match e.event with Faulted { pid; reason } -> Some (pid, reason) | _ -> None)
    (events t)

let syscalls_of t pid =
  List.filter_map
    (fun e ->
      match e.event with
      | Syscall s when s.pid = pid -> Some (s.call, s.result)
      | _ -> None)
    (events t)
