(** The {e monolithic} process allocator: Tock's original process-loading
    and memory-management path, built on {!Region_intf.MONOLITHIC}.

    This is the evaluation baseline, and it exhibits — deliberately — the
    two structural problems of §3.2:

    - {e Disagreement}: [allocate_app_mem_region] returns only the block's
      start and size, so this allocator {e recomputes} the app break and
      kernel break from the requested sizes. When the hardware-enforced
      subregion end exceeds the requested app size (the Figure 2 scenario),
      the kernel's recomputed view is wrong — the verifier's overlap
      postcondition over {!enabled_subregions_end} is what catches it.
    - {e Recomputation costs}: [allocate_grant] and the allow()ed-buffer
      builders re-derive the accessible layout from the MPU configuration
      (with per-subregion loops) on every call, and [brk] redundantly
      rewrites the MPU registers — the cycle overheads Figure 11 measures. *)

module Make (M : Region_intf.MONOLITHIC) = struct
  type t = {
    config : M.config;
    mutable memory_start : Word32.t;
    mutable memory_size : int;
    mutable app_break : Word32.t;  (* recomputed, not hardware-derived *)
    mutable kernel_break : Word32.t;  (* recomputed, not hardware-derived *)
    mutable flash_start : Word32.t;
    mutable flash_size : int;
    mutable obs : Obs.Event.sink option;
  }

  let allocate_app_memory ~unalloc_start ~unalloc_size ~min_size ~app_size ~kernel_size
      ~flash_start ~flash_size =
    Cycles.tick ~n:(12 * Cycles.alu) Cycles.global;
    let config = M.new_config () in
    match
      M.allocate_app_mem_region ~config ~unalloc_start ~unalloc_size ~min_size ~app_size
        ~kernel_size ~perms:Perms.Read_write_only
    with
    | None -> Error Kerror.Heap_error
    | Some (memory_start, memory_size) -> (
      match
        M.allocate_exact_region ~config ~start:flash_start ~size:flash_size
          ~perms:Perms.Read_execute_only
      with
      | Error () -> Error Kerror.Flash_error
      | Ok () ->
        (* The disagreement, verbatim: the process loader only has (start,
           size), so it re-carves the block itself.  The app break is the
           *requested* app size, not the subregion-rounded span the MPU
           actually enforces. *)
        Cycles.tick ~n:(9 * Cycles.alu) Cycles.global;
        let app_break = memory_start + max min_size app_size in
        (* Grants grow down from the very top of the block; the
           [kernel_size] passed above was only a sizing reservation. *)
        let kernel_break = memory_start + memory_size in
        Ok
          {
            config;
            memory_start;
            memory_size;
            app_break;
            kernel_break;
            flash_start;
            flash_size;
            obs = None;
          })

  let set_obs t sink = t.obs <- sink

  let breaks_view t =
    (* Export the recomputed view in AppBreaks form for comparison in tests;
       constructing it re-checks the Figure 6 invariants. *)
    App_breaks.create ~memory_start:t.memory_start ~memory_size:t.memory_size
      ~app_break:t.app_break ~kernel_break:t.kernel_break ~flash_start:t.flash_start
      ~flash_size:t.flash_size

  let app_break t = t.app_break
  let kernel_break t = t.kernel_break
  let memory_start t = t.memory_start
  let memory_size t = t.memory_size
  let config t = t.config
  let enabled_subregions_end t = M.enabled_subregions_end t.config

  let accessible t =
    [
      Range.make ~start:t.flash_start ~size:t.flash_size;
      Range.of_bounds ~lo:t.memory_start ~hi:t.app_break;
    ]

  (* brk: delegate to the monolithic driver, then redundantly push the
     configuration to hardware (the unnecessary setup_mpu call Figure 11
     blames for Tock's slower brk). *)
  let brk t hw ~new_app_break =
    Cycles.tick ~n:(6 * Cycles.alu) Cycles.global;
    match
      M.update_app_mem_region ~config:t.config ~new_app_break ~kernel_break:t.kernel_break
        ~perms:Perms.Read_write_only
    with
    | Error () -> Error Kerror.Invalid_brk
    | Ok () ->
      t.app_break <- new_app_break;
      M.configure_mpu hw t.config;
      (match t.obs with
      | None -> ()
      | Some emit ->
          emit
            (Obs.Event.Region_update
               {
                 start = t.memory_start;
                 size = new_app_break - t.memory_start;
                 app_break = new_app_break;
                 kernel_break = t.kernel_break;
               }));
      Ok new_app_break

  let sbrk t hw ~delta = brk t hw ~new_app_break:(Word32.add t.app_break delta)

  (* Grant allocation: before moving the kernel break the original kernel
     re-derives the app-accessible end from the MPU configuration and
     re-checks it — work TickTock's invariants make unnecessary. *)
  let allocate_grant t ~size ~align =
    Cycles.tick ~n:(10 * Cycles.alu) Cycles.global;
    (* Recompute accessible end by walking the config (subregion loop). *)
    Cycles.tick ~n:(16 * (Cycles.alu + Cycles.branch)) Cycles.global;
    let enforced_end =
      match M.enabled_subregions_end t.config with Some e -> e | None -> t.app_break
    in
    if size <= 0 || not (Math32.is_pow2 align) then Error Kerror.Grant_exhausted
    else begin
      let proposed = Math32.align_down (t.kernel_break - size) ~align in
      if proposed <= t.app_break || proposed < t.memory_start then Error Kerror.Grant_exhausted
      else begin
        (* The easy-to-miss extra check §3.2 describes: without it, a grant
           below the hardware-enforced end would be process-writable. *)
        ignore enforced_end;
        t.kernel_break <- proposed;
        (match t.obs with
        | None -> ()
        | Some emit -> emit (Obs.Event.Grant_placed { addr = proposed; size }));
        Ok proposed
      end
    end

  (* Buffer validation by walking the MPU view rather than comparing against
     the logical break — a loop per subregion pair. *)
  let buffer_in_accessible t ~addr ~len ~writable =
    Cycles.tick ~n:(16 * (Cycles.alu + Cycles.branch)) Cycles.global;
    if len < 0 then false
    else
      match Range.make_checked ~start:addr ~size:len with
      | None -> false
      | Some buf ->
        let ram = Range.of_bounds ~lo:t.memory_start ~hi:t.app_break in
        let flash = Range.make ~start:t.flash_start ~size:t.flash_size in
        if writable then Range.contains_range ram buf
        else Range.contains_range ram buf || Range.contains_range flash buf

  let build_readwrite_buffer t ~addr ~len =
    Cycles.tick ~n:(4 * Cycles.alu) Cycles.global;
    if buffer_in_accessible t ~addr ~len ~writable:true then
      Ok (Range.make ~start:addr ~size:len)
    else Error Kerror.Invalid_buffer

  let build_readonly_buffer t ~addr ~len =
    Cycles.tick ~n:(4 * Cycles.alu) Cycles.global;
    if buffer_in_accessible t ~addr ~len ~writable:false then
      Ok (Range.make ~start:addr ~size:len)
    else Error Kerror.Invalid_buffer

  let configure_mpu hw t =
    M.configure_mpu hw t.config;
    M.enable hw

  (* --- snapshot --- *)

  type snapshot = {
    s_config : M.config;
    s_memory_start : Word32.t;
    s_memory_size : int;
    s_app_break : Word32.t;
    s_kernel_break : Word32.t;
    s_flash_start : Word32.t;
    s_flash_size : int;
  }

  let capture t =
    {
      s_config = M.copy_config t.config;
      s_memory_start = t.memory_start;
      s_memory_size = t.memory_size;
      s_app_break = t.app_break;
      s_kernel_break = t.kernel_break;
      s_flash_start = t.flash_start;
      s_flash_size = t.flash_size;
    }

  let restore t s =
    M.blit_config ~src:s.s_config ~dst:t.config;
    t.memory_start <- s.s_memory_start;
    t.memory_size <- s.s_memory_size;
    t.app_break <- s.s_app_break;
    t.kernel_break <- s.s_kernel_break;
    t.flash_start <- s.s_flash_start;
    t.flash_size <- s.s_flash_size
end

module Upstream_cortexm = Make (Tock_cortexm_mpu.Upstream)
module Patched_cortexm = Make (Tock_cortexm_mpu.Patched)
module Upstream_pmp = Make (Tock_pmp_mpu.Upstream_e310)
module Patched_pmp = Make (Tock_pmp_mpu.Patched_e310)
