(** Pre-instantiated kernels: the configurations the evaluation uses.

    - TickTock (granular) and Tock (monolithic, upstream bugs present, and
      patched) on the ARM Cortex-M board;
    - TickTock on the three RISC-V PMP chips;
    - Tock (monolithic) on PMP for the PMP bug reproductions. *)

module Ticktock_arm_mm = Mm.Ticktock (Cortexm_mpu)
module Tock_arm_mm = Mm.Tock (Tock_cortexm_mpu.Upstream)
module Tock_arm_patched_mm = Mm.Tock (Tock_cortexm_mpu.Patched)
module Ticktock_arm_v8_mm = Mm.Ticktock (Armv8m_mpu_drv)
module Ticktock_e310_mm = Mm.Ticktock (Pmp_mpu.E310)
module Ticktock_earlgrey_mm = Mm.Ticktock (Pmp_mpu.Earlgrey)
module Ticktock_qemu_mm = Mm.Ticktock (Pmp_mpu.QemuRv32)
module Tock_pmp_mm = Mm.Tock (Tock_pmp_mpu.Upstream_e310)
module Tock_pmp_patched_mm = Mm.Tock (Tock_pmp_mpu.Patched_e310)

module Ticktock_arm = Kernel.Make (Ticktock_arm_mm)
module Tock_arm = Kernel.Make (Tock_arm_mm)
module Tock_arm_patched = Kernel.Make (Tock_arm_patched_mm)
module Ticktock_arm_v8 = Kernel.Make (Ticktock_arm_v8_mm)
module Ticktock_e310 = Kernel.Make (Ticktock_e310_mm)
module Ticktock_earlgrey = Kernel.Make (Ticktock_earlgrey_mm)
module Ticktock_qemu = Kernel.Make (Ticktock_qemu_mm)
module Tock_pmp = Kernel.Make (Tock_pmp_mm)
module Tock_pmp_patched = Kernel.Make (Tock_pmp_patched_mm)

(* --- observability wiring ---

   A board attaches one recorder to every emitting layer: the kernel (which
   stamps events with its tick counter), the memory bus, the MPU model and
   the CPU. The recorder is the caller's, or — when the caller passed none —
   one implied by the ambient {!Obs.Config} mode, so harnesses that build
   instances through opaque closures (difftest, fuzz) still trace when
   TICKTOCK_OBS is set. *)

let resolve_obs = function
  | Some _ as obs -> obs
  | None -> (
    match Obs.Config.auto_mode () with
    | Obs.Config.Off -> None
    | Obs.Config.On -> Some (Obs.Recorder.create ())
    | Obs.Config.Disabled ->
      let r = Obs.Recorder.create () in
      Obs.Recorder.set_enabled r false;
      Some r)

let wire_arm (m : Machine.arm) sink =
  if sink <> None then begin
    Memory.set_obs m.Machine.arm_mem sink;
    Mpu_hw.Armv7m_mpu.set_obs m.Machine.arm_mpu sink;
    Fluxarm.Cpu.set_obs m.Machine.arm_cpu sink
  end

let wire_v8 (m : Machine.arm_v8) sink =
  if sink <> None then begin
    Memory.set_obs m.Machine.v8_mem sink;
    Mpu_hw.Armv8m_mpu.set_obs m.Machine.v8_mpu sink;
    Fluxarm.Cpu.set_obs m.Machine.v8_cpu sink
  end

let wire_rv (m : Machine.riscv) sink =
  if sink <> None then begin
    Memory.set_obs m.Machine.rv_mem sink;
    Mpu_hw.Pmp.set_obs m.Machine.rv_pmp sink
  end

(** Fresh ARM machine + TickTock kernel. *)
let make_ticktock_arm ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_arm () in
  let k =
    Ticktock_arm.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.arm_cpu) ~systick:m.Machine.arm_systick
      ?quantum ?capsules ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_arm m (Ticktock_arm.obs_sink k);
  (m, k)

(** Fresh ARM machine + upstream (buggy) Tock kernel. *)
let make_tock_arm ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_arm () in
  let k =
    Tock_arm.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.arm_cpu) ~systick:m.Machine.arm_systick
      ?quantum ?capsules ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_arm m (Tock_arm.obs_sink k);
  (m, k)

(** Fresh ARM machine + patched Tock kernel. *)
let make_tock_arm_patched ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_arm () in
  let k =
    Tock_arm_patched.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.arm_cpu) ~systick:m.Machine.arm_systick
      ?quantum ?capsules ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_arm m (Tock_arm_patched.obs_sink k);
  (m, k)

(** Fresh RISC-V machine + TickTock kernel on the SiFive E310. *)
let make_ticktock_e310 ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_riscv Mpu_hw.Pmp.sifive_e310 in
  let k =
    Ticktock_e310.create ~mem:m.Machine.rv_mem ~hw:m.Machine.rv_pmp
      ~switcher:(Kernel.Sim_switch m.Machine.rv_machine_mode) ?quantum ?capsules
      ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_rv m (Ticktock_e310.obs_sink k);
  (m, k)

(** Fresh RISC-V machine + TickTock kernel on OpenTitan EarlGrey. The
    kernel seals its own regions with locked Smepmp entries first. *)
let make_ticktock_earlgrey ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_riscv Mpu_hw.Pmp.earlgrey in
  Epmp.protect_kernel m.Machine.rv_pmp;
  let k =
    Ticktock_earlgrey.create ~mem:m.Machine.rv_mem ~hw:m.Machine.rv_pmp
      ~switcher:(Kernel.Sim_switch m.Machine.rv_machine_mode) ?quantum ?capsules
      ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_rv m (Ticktock_earlgrey.obs_sink k);
  (m, k)

(** Fresh RISC-V machine + TickTock kernel on the QEMU rv32 virt board. *)
let make_ticktock_qemu ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_riscv Mpu_hw.Pmp.qemu_rv32_virt in
  let k =
    Ticktock_qemu.create ~mem:m.Machine.rv_mem ~hw:m.Machine.rv_pmp
      ~switcher:(Kernel.Sim_switch m.Machine.rv_machine_mode) ?quantum ?capsules
      ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_rv m (Ticktock_qemu.obs_sink k);
  (m, k)

(** Fresh RISC-V machine + upstream (buggy) monolithic Tock kernel on PMP. *)
let make_tock_pmp ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_riscv Mpu_hw.Pmp.sifive_e310 in
  let k =
    Tock_pmp.create ~mem:m.Machine.rv_mem ~hw:m.Machine.rv_pmp
      ~switcher:(Kernel.Sim_switch m.Machine.rv_machine_mode) ?quantum ?capsules
      ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_rv m (Tock_pmp.obs_sink k);
  (m, k)

(** Fresh RISC-V machine + patched monolithic Tock kernel on PMP. *)
let make_tock_pmp_patched ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_riscv Mpu_hw.Pmp.sifive_e310 in
  let k =
    Tock_pmp_patched.create ~mem:m.Machine.rv_mem ~hw:m.Machine.rv_pmp
      ~switcher:(Kernel.Sim_switch m.Machine.rv_machine_mode) ?quantum ?capsules
      ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_rv m (Tock_pmp_patched.obs_sink k);
  (m, k)

(** Fresh ARM machine + TickTock kernel whose context switch runs assembled
    Thumb-2 machine code through the fetch-decode-execute engine. *)
let make_ticktock_arm_mc ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_arm () in
  let code = Fluxarm.Handlers_mc.install m.Machine.arm_mem in
  let k =
    Ticktock_arm.create ~mem:m.Machine.arm_mem ~hw:m.Machine.arm_mpu
      ~switcher:(Kernel.Arm_mc_switch (m.Machine.arm_cpu, code))
      ~systick:m.Machine.arm_systick ?quantum ?capsules ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_arm m (Ticktock_arm.obs_sink k);
  (m, k)

(** Fresh ARMv8-M (PMSAv8) machine + TickTock kernel. *)
let make_ticktock_arm_v8 ?quantum ?capsules ?obs ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span () =
  let m = Machine.create_arm_v8 () in
  let k =
    Ticktock_arm_v8.create ~mem:m.Machine.v8_mem ~hw:m.Machine.v8_mpu
      ~switcher:(Kernel.Arm_switch m.Machine.v8_cpu) ~systick:m.Machine.v8_systick ?quantum
      ?capsules ?obs:(resolve_obs obs) ?chaos ?scrub_every ?scrub_policy ?watchdog ?restart_decay_span ()
  in
  wire_v8 m (Ticktock_arm_v8.obs_sink k);
  (m, k)

(* --- snapshot targets ---

   Only the board constructor sees the full device complement, so targets
   are assembled here. The component order is the restore order and the
   kernel goes LAST — its thunk rewrites the obs recorder ring (erasing the
   [Buscache_flush] the memory restore just emitted) and re-pins the global
   cycle counter, which is what makes a forked round byte-identical to a
   booted one. *)

let comp name ~capture ~restore ~fingerprint obj =
  {
    Snapshot.co_name = name;
    co_capture =
      (fun () ->
        let s = capture obj in
        fun () -> restore obj s);
    co_fingerprint = (fun () -> fingerprint obj);
  }

let arm_components (m : Machine.arm) =
  [
    comp "cpu" ~capture:Fluxarm.Cpu.capture_state ~restore:Fluxarm.Cpu.restore_state
      ~fingerprint:Fluxarm.Cpu.fingerprint m.Machine.arm_cpu;
    comp "mpu" ~capture:Mpu_hw.Armv7m_mpu.capture_state
      ~restore:Mpu_hw.Armv7m_mpu.restore_state ~fingerprint:Mpu_hw.Armv7m_mpu.fingerprint
      m.Machine.arm_mpu;
    comp "systick" ~capture:Mpu_hw.Systick.capture_state ~restore:Mpu_hw.Systick.restore_state
      ~fingerprint:Mpu_hw.Systick.fingerprint m.Machine.arm_systick;
    comp "nvic" ~capture:Mpu_hw.Nvic.capture_state ~restore:Mpu_hw.Nvic.restore_state
      ~fingerprint:Mpu_hw.Nvic.fingerprint m.Machine.arm_nvic;
    comp "scb" ~capture:Mpu_hw.Scb.capture_state ~restore:Mpu_hw.Scb.restore_state
      ~fingerprint:Mpu_hw.Scb.fingerprint m.Machine.arm_scb;
  ]

let v8_components (m : Machine.arm_v8) =
  [
    comp "cpu" ~capture:Fluxarm.Cpu.capture_state ~restore:Fluxarm.Cpu.restore_state
      ~fingerprint:Fluxarm.Cpu.fingerprint m.Machine.v8_cpu;
    comp "mpu" ~capture:Mpu_hw.Armv8m_mpu.capture_state
      ~restore:Mpu_hw.Armv8m_mpu.restore_state ~fingerprint:Mpu_hw.Armv8m_mpu.fingerprint
      m.Machine.v8_mpu;
    comp "systick" ~capture:Mpu_hw.Systick.capture_state ~restore:Mpu_hw.Systick.restore_state
      ~fingerprint:Mpu_hw.Systick.fingerprint m.Machine.v8_systick;
  ]

let rv_components (m : Machine.riscv) =
  [
    comp "pmp" ~capture:Mpu_hw.Pmp.capture_state ~restore:Mpu_hw.Pmp.restore_state
      ~fingerprint:Mpu_hw.Pmp.fingerprint m.Machine.rv_pmp;
    comp "machine-mode"
      ~capture:(fun r -> !r)
      ~restore:(fun r v -> r := v)
      ~fingerprint:(fun r -> Fp.bool Fp.seed !r)
      m.Machine.rv_machine_mode;
  ]

let target ~arch ~board ~mem ~devices ~kernel ~procs =
  {
    Snapshot.tg_arch = arch;
    tg_board = board;
    tg_mem = mem;
    tg_components = devices @ [ kernel ];
    tg_proc_count = procs;
  }

(* The replay navigator's MPU view: the concrete hardware model's own
   pretty-printer, which only the board constructor can reach. *)
let mpu_arm (m : Machine.arm) () = Format.asprintf "%a" Mpu_hw.Armv7m_mpu.pp m.Machine.arm_mpu
let mpu_v8 (m : Machine.arm_v8) () = Format.asprintf "%a" Mpu_hw.Armv8m_mpu.pp m.Machine.v8_mpu
let mpu_rv (m : Machine.riscv) () = Format.asprintf "%a" Mpu_hw.Pmp.pp m.Machine.rv_pmp

(* --- type-erased instances for the evaluation harness --- *)

let instance_ticktock_arm_v8 ?quantum ?capsules ?obs () =
  let m, k = make_ticktock_arm_v8 ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"armv8m" ~board:"ticktock-arm-v8" ~mem:m.Machine.v8_mem
      ~devices:(v8_components m)
      ~kernel:
        (comp "kernel" ~capture:Ticktock_arm_v8.capture ~restore:Ticktock_arm_v8.restore
           ~fingerprint:Ticktock_arm_v8.fingerprint k)
      ~procs:(fun () -> List.length (Ticktock_arm_v8.processes k))
  in
  { (Ticktock_arm_v8.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_v8 m }

let instance_ticktock_arm_mc ?quantum ?capsules ?obs () =
  let m, k = make_ticktock_arm_mc ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"armv7m" ~board:"ticktock-arm-mc" ~mem:m.Machine.arm_mem
      ~devices:(arm_components m)
      ~kernel:
        (comp "kernel" ~capture:Ticktock_arm.capture ~restore:Ticktock_arm.restore
           ~fingerprint:Ticktock_arm.fingerprint k)
      ~procs:(fun () -> List.length (Ticktock_arm.processes k))
  in
  { (Ticktock_arm.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_arm m }

let instance_ticktock_arm ?quantum ?capsules ?obs () =
  let m, k = make_ticktock_arm ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"armv7m" ~board:"ticktock-arm" ~mem:m.Machine.arm_mem
      ~devices:(arm_components m)
      ~kernel:
        (comp "kernel" ~capture:Ticktock_arm.capture ~restore:Ticktock_arm.restore
           ~fingerprint:Ticktock_arm.fingerprint k)
      ~procs:(fun () -> List.length (Ticktock_arm.processes k))
  in
  { (Ticktock_arm.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_arm m }

let instance_tock_arm ?quantum ?capsules ?obs () =
  let m, k = make_tock_arm ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"armv7m" ~board:"tock-arm-upstream" ~mem:m.Machine.arm_mem
      ~devices:(arm_components m)
      ~kernel:
        (comp "kernel" ~capture:Tock_arm.capture ~restore:Tock_arm.restore
           ~fingerprint:Tock_arm.fingerprint k)
      ~procs:(fun () -> List.length (Tock_arm.processes k))
  in
  { (Tock_arm.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_arm m }

let instance_tock_arm_patched ?quantum ?capsules ?obs () =
  let m, k = make_tock_arm_patched ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"armv7m" ~board:"tock-arm-patched" ~mem:m.Machine.arm_mem
      ~devices:(arm_components m)
      ~kernel:
        (comp "kernel" ~capture:Tock_arm_patched.capture ~restore:Tock_arm_patched.restore
           ~fingerprint:Tock_arm_patched.fingerprint k)
      ~procs:(fun () -> List.length (Tock_arm_patched.processes k))
  in
  { (Tock_arm_patched.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_arm m }

let instance_ticktock_e310 ?quantum ?capsules ?obs () =
  let m, k = make_ticktock_e310 ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"rv32-pmp" ~board:"ticktock-e310" ~mem:m.Machine.rv_mem
      ~devices:(rv_components m)
      ~kernel:
        (comp "kernel" ~capture:Ticktock_e310.capture ~restore:Ticktock_e310.restore
           ~fingerprint:Ticktock_e310.fingerprint k)
      ~procs:(fun () -> List.length (Ticktock_e310.processes k))
  in
  { (Ticktock_e310.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_rv m }

let instance_ticktock_earlgrey ?quantum ?capsules ?obs () =
  let m, k = make_ticktock_earlgrey ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"rv32-pmp" ~board:"ticktock-earlgrey" ~mem:m.Machine.rv_mem
      ~devices:(rv_components m)
      ~kernel:
        (comp "kernel" ~capture:Ticktock_earlgrey.capture ~restore:Ticktock_earlgrey.restore
           ~fingerprint:Ticktock_earlgrey.fingerprint k)
      ~procs:(fun () -> List.length (Ticktock_earlgrey.processes k))
  in
  { (Ticktock_earlgrey.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_rv m }

let instance_ticktock_qemu ?quantum ?capsules ?obs () =
  let m, k = make_ticktock_qemu ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"rv32-pmp" ~board:"ticktock-qemu-rv32" ~mem:m.Machine.rv_mem
      ~devices:(rv_components m)
      ~kernel:
        (comp "kernel" ~capture:Ticktock_qemu.capture ~restore:Ticktock_qemu.restore
           ~fingerprint:Ticktock_qemu.fingerprint k)
      ~procs:(fun () -> List.length (Ticktock_qemu.processes k))
  in
  { (Ticktock_qemu.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_rv m }

let instance_tock_pmp ?quantum ?capsules ?obs () =
  let m, k = make_tock_pmp ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"rv32-pmp" ~board:"tock-pmp-upstream" ~mem:m.Machine.rv_mem
      ~devices:(rv_components m)
      ~kernel:
        (comp "kernel" ~capture:Tock_pmp.capture ~restore:Tock_pmp.restore
           ~fingerprint:Tock_pmp.fingerprint k)
      ~procs:(fun () -> List.length (Tock_pmp.processes k))
  in
  { (Tock_pmp.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_rv m }

let instance_tock_pmp_patched ?quantum ?capsules ?obs () =
  let m, k = make_tock_pmp_patched ?quantum ?capsules ?obs () in
  let tgt =
    target ~arch:"rv32-pmp" ~board:"tock-pmp-patched" ~mem:m.Machine.rv_mem
      ~devices:(rv_components m)
      ~kernel:
        (comp "kernel" ~capture:Tock_pmp_patched.capture ~restore:Tock_pmp_patched.restore
           ~fingerprint:Tock_pmp_patched.fingerprint k)
      ~procs:(fun () -> List.length (Tock_pmp_patched.processes k))
  in
  { (Tock_pmp_patched.instance k) with Instance.snap_target = Some tgt; mpu_describe = mpu_rv m }

(** Every kernel configuration, for harnesses that sweep all of them. *)
let all_instances : (string * (unit -> Instance.t)) list =
  [
    ("ticktock-arm", fun () -> instance_ticktock_arm ());
    ("ticktock-arm-mc", fun () -> instance_ticktock_arm_mc ());
    ("ticktock-arm-v8", fun () -> instance_ticktock_arm_v8 ());
    ("tock-arm-upstream", fun () -> instance_tock_arm ());
    ("tock-arm-patched", fun () -> instance_tock_arm_patched ());
    ("ticktock-e310", fun () -> instance_ticktock_e310 ());
    ("ticktock-earlgrey", fun () -> instance_ticktock_earlgrey ());
    ("ticktock-qemu-rv32", fun () -> instance_ticktock_qemu ());
    ("tock-pmp-upstream", fun () -> instance_tock_pmp ());
    ("tock-pmp-patched", fun () -> instance_tock_pmp_patched ());
  ]
