(** TickTock's granular ARMv8-M (PMSAv8) MPU driver.

    The third implementation of the {!Region_intf.MPU} abstraction, and the
    strongest evidence for the §3.5 portability claim: base/limit hardware
    with 32-byte granularity needs {e none} of the power-of-two/subregion
    machinery of the v7 driver — a region is an exact 32-byte-rounded
    range, and the generic allocator above does not change by a line. *)

module Hw = Mpu_hw.Armv8m_mpu
module Region = Armv8m_region

let arch_name = "cortex-m-v8"

type hw = Hw.t

let region_count = Hw.region_count
let grain = Hw.granule

let postcondition ~site ~total_size ~perms r0 =
  Verify.Violation.ensure (site ^ ": region set") (Region.is_set r0);
  Verify.Violation.ensure (site ^ ": perms") (Region.matches_perms r0 perms);
  Verify.Violation.ensuref (site ^ ": span covers request")
    (Option.value (Region.size r0) ~default:0 >= total_size)
    "size=%d requested=%d"
    (Option.value (Region.size r0) ~default:0)
    total_size

let new_regions ~max_region_id ~unalloc_start ~unalloc_size ~total_size ~perms =
  Verify.Violation.requiref "v8 new_regions: region ids"
    (max_region_id >= 1 && max_region_id < region_count)
    "max=%d" max_region_id;
  Verify.Violation.requiref "v8 new_regions: sizes" (total_size > 0 && unalloc_size >= 0)
    "total=%d unalloc=%d" total_size unalloc_size;
  Cycles.tick ~n:(8 * Cycles.alu) Cycles.global;
  let start = Math32.align_up unalloc_start ~align:grain in
  let size = Math32.align_up total_size ~align:grain in
  if start + size > unalloc_start + unalloc_size then None
  else begin
    let r0 = Region.create ~region_id:(max_region_id - 1) ~start ~size ~perms in
    postcondition ~site:"v8 new_regions" ~total_size ~perms r0;
    Some (r0, Region.empty ~region_id:max_region_id)
  end

let update_regions ~max_region_id ~region_start ~available_size ~total_size ~perms =
  Verify.Violation.requiref "v8 update_regions: region ids"
    (max_region_id >= 1 && max_region_id < region_count)
    "max=%d" max_region_id;
  Cycles.tick ~n:(6 * Cycles.alu) Cycles.global;
  if not (Math32.is_aligned region_start ~align:grain) then None
  else begin
    let size = Math32.align_up total_size ~align:grain in
    if size > available_size then None
    else begin
      let r0 = Region.create ~region_id:(max_region_id - 1) ~start:region_start ~size ~perms in
      postcondition ~site:"v8 update_regions" ~total_size ~perms r0;
      Some (r0, Region.empty ~region_id:max_region_id)
    end
  end

let create_exact_region ~region_id ~start ~size ~perms =
  Cycles.tick ~n:(4 * Cycles.alu) Cycles.global;
  if size <= 0 || size mod grain <> 0 || not (Math32.is_aligned start ~align:grain) then None
  else begin
    let r = Region.create ~region_id ~start ~size ~perms in
    Verify.Violation.ensure "v8 create_exact_region: exact span"
      (Region.can_access r ~start ~end_:(start + size) ~perms);
    Some r
  end

let configure_mpu hw regions =
  Array.iter
    (fun r ->
      if Region.is_set r then
        Hw.write_region hw ~index:(Region.region_id r) ~rbar:(Region.rbar r)
          ~rasr:(Region.rlar r)
      else Hw.clear_region hw ~index:(Region.region_id r))
    regions

let enable hw = Hw.set_enabled hw true
let disable hw = Hw.set_enabled hw false
let accessible_ranges hw access = Hw.accessible_ranges hw access

let snapshot hw =
  (if Hw.enabled hw then 1 else 0)
  :: List.concat
       (List.init Hw.region_count (fun i ->
            let rbar, rlar = Hw.read_region hw ~index:i in
            [ rbar; rlar ]))

(* Diff-only write-back through the front door (see {!Cortexm_mpu.restore}). *)
let restore hw words =
  match words with
  | enable :: regs when List.length regs = 2 * Hw.region_count ->
    let rec go index = function
      | rbar :: rlar :: rest ->
        let live_rbar, live_rlar = Hw.read_region hw ~index in
        if live_rbar <> rbar || live_rlar <> rlar then
          Hw.write_region hw ~index ~rbar ~rasr:rlar;
        go (index + 1) rest
      | _ -> ()
    in
    go 0 regs;
    let en = enable <> 0 in
    if Hw.enabled hw <> en then Hw.set_enabled hw en
  | _ -> invalid_arg (arch_name ^ ": restore: malformed snapshot")
