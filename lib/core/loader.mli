(** Application flash images and placement (the TBF analog).

    Tock apps ship as Tock Binary Format objects placed in flash after the
    kernel. We model a compact TBF-style image — fixed header (magic,
    version, sizes, name) plus opaque payload — and the placement
    discipline Tock's linker scripts impose for the Cortex-M MPU: each
    image is padded to the next power of two and placed at a base aligned
    to that size, so its flash region is exactly representable. *)

val magic : int
(** ["TBF2"] as a little-endian word. *)

val header_words : int

type image = {
  app_name : string;
  min_ram : int;  (** the app's requested RAM, like the TBF minimum *)
  payload : string;  (** opaque app binary *)
}

type placed = {
  image : image;
  flash_start : Word32.t;  (** base of the padded power-of-two block *)
  flash_size : int;  (** padded to a power of two *)
  entry : Word32.t;  (** address of the first payload byte *)
}

val checksum : image -> Word32.t
(** FNV-1a over header fields, name and payload — the modeled credentials
    footer (real Tock verifies cryptographic TBF credentials; the hash
    preserves the code path without a crypto library). *)

val image_bytes : image -> int
(** Unpadded serialized size, including the 4-byte credentials footer. *)

val padded_size : image -> int
(** Power-of-two block size used for placement (floor 512 bytes). *)

val write_image : Memory.t -> base:Word32.t -> image -> unit
(** Serialize into memory, charging the copy cost a real loader pays (this
    dominates Figure 11's [create] row). *)

val read_image : Memory.t -> base:Word32.t -> (image, string) result
(** Parse an image back; [Error] on bad magic or implausible header. *)

val verify_credentials : Memory.t -> base:Word32.t -> bool
(** Recompute the hash over the image as it sits in flash and compare with
    the stored footer — false for tampered or unparseable images. *)

val place : Memory.t -> cursor:Word32.t -> image -> (placed * Word32.t, Kerror.t) result
(** Write the image at the next properly aligned address at or after
    [cursor] inside the app-flash window; returns the placement and the
    new cursor. [Out_of_memory] when flash is currently exhausted,
    [Image_oversized] when the padded layout exceeds the whole app-flash
    window (a structurally impossible image, e.g. a hostile OTA). *)

val fits : image -> bool
(** Whether the image's layout could ever be placed: padded flash block
    within the app-flash window and [min_ram] within the app-SRAM window.
    The up-front form of the typed [Image_oversized] refusal, for OTA
    receivers validating an announced image before streaming it. *)
