(** Kernel error codes for process-memory operations.

    Mirrors Tock's [ErrorCode]/[AllocateAppMemoryError] split loosely; one
    flat type keeps syscall return-value plumbing simple. *)

type t =
  | Heap_error  (** MPU could not create the requested RAM regions *)
  | Flash_error  (** MPU could not create the flash region *)
  | Out_of_memory  (** block does not fit in the unallocated pool *)
  | Invalid_brk  (** brk/sbrk request outside the legal window *)
  | Grant_exhausted  (** grant allocation would cross the app break *)
  | Invalid_buffer  (** allow()ed buffer not inside app-accessible memory *)
  | No_such_process
  | Not_supported
  | Image_oversized
      (** image layout can never fit the target's flash/RAM regions — not a
          transient shortage ([Out_of_memory]) but a structurally
          impossible request, so OTA paths can refuse it up front *)

let to_string = function
  | Heap_error -> "heap error"
  | Flash_error -> "flash error"
  | Out_of_memory -> "out of memory"
  | Invalid_brk -> "invalid brk"
  | Grant_exhausted -> "grant exhausted"
  | Invalid_buffer -> "invalid buffer"
  | No_such_process -> "no such process"
  | Not_supported -> "not supported"
  | Image_oversized -> "image oversized"

let pp ppf e = Format.pp_print_string ppf (to_string e)
