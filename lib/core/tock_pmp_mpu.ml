(** Tock's monolithic RISC-V PMP implementation, with the two upstream PMP
    bugs the paper cites reproducible behind fault switches:

    - [above_app_brk] — the PR #2173 class: the allocation/update path
      rounds the PMP region's top up to the allocation granule {e after}
      computing the app break, so a process can read/write the slack between
      its requested break and the rounded region top — memory the kernel
      may hand to the grant region.
    - [shifted_comparison] — the PR #2947 class: the overlap check between
      the proposed app region and the kernel break compares a raw byte
      address against a [pmpaddr] CSR value (a byte address shifted right by
      two) without normalizing the units, so the check practically always
      passes and overlapping configurations are accepted. *)

module Hw = Mpu_hw.Pmp

type faults = { above_app_brk : bool; shifted_comparison : bool }

let upstream_faults = { above_app_brk = true; shifted_comparison = true }
let patched_faults = { above_app_brk = false; shifted_comparison = false }

(* Coarse rounding used by the buggy path: upstream rounded the region top
   to an 8-byte PMP "granule" it assumed, not to the app break. *)
let coarse_grain = 8

module Make (C : sig
  val chip : Hw.chip
  val faults : faults
end) =
struct
  let arch_name = "rv32-pmp(monolithic):" ^ C.chip.Hw.chip_name

  type hw = Hw.t

  type config = {
    mutable ram_region : Pmp_region.t;
    mutable flash_region : Pmp_region.t;
  }

  let ram_id = 0
  let flash_id = 1

  let new_config () =
    { ram_region = Pmp_region.empty ~region_id:ram_id;
      flash_region = Pmp_region.empty ~region_id:flash_id }

  (* Region values are immutable, so a record copy is a deep copy. *)
  let copy_config c = { ram_region = c.ram_region; flash_region = c.flash_region }

  let blit_config ~src ~dst =
    dst.ram_region <- src.ram_region;
    dst.flash_region <- src.flash_region

  let round_top top =
    if C.faults.above_app_brk then Math32.align_up top ~align:coarse_grain else top

  (* The unit-confused comparison of the #2947 class: [kernel_break] is a
     byte address, [pmpaddr_hi] is shifted right by 2. *)
  let region_top_below_break ~pmpaddr_hi ~kernel_break =
    if C.faults.shifted_comparison then pmpaddr_hi <= kernel_break
    else pmpaddr_hi lsl 2 <= kernel_break

  let allocate_app_mem_region ~config ~unalloc_start ~unalloc_size ~min_size ~app_size
      ~kernel_size ~perms =
    Cycles.tick ~n:(12 * Cycles.alu) Cycles.global;
    let mem_size = max min_size (app_size + kernel_size) in
    let start = Math32.align_up unalloc_start ~align:4 in
    if start + mem_size > unalloc_start + unalloc_size then None
    else begin
      let app_top = round_top (start + Math32.align_up app_size ~align:4) in
      let region = Pmp_region.create ~region_id:ram_id ~start ~size:(app_top - start) ~perms in
      let kernel_break = start + mem_size - kernel_size in
      if
        not
          (region_top_below_break ~pmpaddr_hi:(Pmp_region.pmpaddr_hi region) ~kernel_break)
      then None
      else begin
        config.ram_region <- region;
        Some (start, mem_size)
      end
    end

  let enabled_subregions_end config =
    match Pmp_region.accessible_range config.ram_region with
    | Some r -> Some (Range.end_ r)
    | None -> None

  let update_app_mem_region ~config ~new_app_break ~kernel_break ~perms =
    match Pmp_region.start config.ram_region with
    | None -> Error ()
    | Some region_start ->
      Cycles.tick ~n:(10 * Cycles.alu) Cycles.global;
      if new_app_break < region_start then Error ()
      else begin
        let top = round_top (Math32.align_up new_app_break ~align:4) in
        let region =
          Pmp_region.create ~region_id:ram_id ~start:region_start ~size:(top - region_start)
            ~perms
        in
        if
          not
            (region_top_below_break ~pmpaddr_hi:(Pmp_region.pmpaddr_hi region) ~kernel_break)
        then Error ()
        else begin
          config.ram_region <- region;
          Ok ()
        end
      end

  let allocate_exact_region ~config ~start ~size ~perms =
    Cycles.tick ~n:(4 * Cycles.alu) Cycles.global;
    if size <= 0 || size mod 4 <> 0 || not (Math32.is_aligned start ~align:4) then Error ()
    else begin
      config.flash_region <- Pmp_region.create ~region_id:flash_id ~start ~size ~perms;
      Ok ()
    end

  let configure_mpu hw config =
    List.iter
      (fun r ->
        let i = Pmp_region.region_id r in
        if Pmp_region.is_set r then begin
          Hw.set_entry hw ~index:(2 * i)
            ~cfg:(Hw.encode_cfg ~r:false ~w:false ~x:false ~mode:Hw.Off ~lock:false)
            ~addr:(Pmp_region.pmpaddr_lo r);
          Hw.set_entry hw ~index:((2 * i) + 1) ~cfg:(Pmp_region.cfg r)
            ~addr:(Pmp_region.pmpaddr_hi r)
        end
        else begin
          Hw.clear_entry hw ~index:(2 * i);
          Hw.clear_entry hw ~index:((2 * i) + 1)
        end)
      [ config.ram_region; config.flash_region ]

  let enable hw = if C.chip.Hw.epmp then Hw.set_mmwp hw true
  let disable _hw = ()
  let accessible_ranges hw access = Hw.accessible_ranges hw access

  let snapshot hw =
    (if Hw.mml hw then 1 else 0)
    :: List.concat
         (List.init C.chip.Hw.entry_count (fun i ->
              let cfg, addr = Hw.read_entry hw ~index:i in
              [ cfg; addr ]))

  (* Diff-only write-back through the front door (see {!Pmp_mpu.Make.restore}). *)
  let restore hw words =
    match words with
    | mml :: entries when List.length entries = 2 * C.chip.Hw.entry_count ->
      let rec go index = function
        | cfg :: addr :: rest ->
          let live_cfg, live_addr = Hw.read_entry hw ~index in
          if live_cfg <> cfg || live_addr <> addr then Hw.set_entry hw ~index ~cfg ~addr;
          go (index + 1) rest
        | _ -> ()
      in
      go 0 entries;
      let m = mml <> 0 in
      if Hw.mml hw <> m then Hw.set_mml hw m
    | _ -> invalid_arg (arch_name ^ ": restore: malformed snapshot")
end

module Upstream_e310 = Make (struct
  let chip = Hw.sifive_e310
  let faults = upstream_faults
end)

module Patched_e310 = Make (struct
  let chip = Hw.sifive_e310
  let faults = patched_faults
end)
