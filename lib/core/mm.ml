(** The process-memory-manager interface the kernel is written against.

    Both kernels in the evaluation — TickTock's granular allocator
    ({!Ticktock.Make}) and Tock's monolithic baseline ({!Tock.Make}) —
    implement this one signature, so the scheduler, syscall dispatch and
    process machinery in {!Kernel} are shared verbatim. The performance
    differences Figure 11 measures come only from what happens behind these
    functions. *)

module type S = sig
  val name : string

  type hw
  type alloc

  val allocate :
    unalloc_start:Word32.t ->
    unalloc_size:int ->
    min_size:int ->
    app_size:int ->
    kernel_size:int ->
    flash_start:Word32.t ->
    flash_size:int ->
    (alloc, Kerror.t) result

  val memory_start : alloc -> Word32.t
  val memory_size : alloc -> int
  val app_break : alloc -> Word32.t
  val kernel_break : alloc -> Word32.t

  val accessible : alloc -> Range.t list
  (** The manager's {e logical} view of what the process may touch. *)

  val set_obs : alloc -> Obs.Event.sink option -> unit
  (** Attach an observability sink to this allocation: region updates and
      grant placements emit through it. The kernel wires this right after
      {!allocate} when tracing is on; [None] (the creation default) costs
      one pattern match per allocator decision. *)

  val brk : alloc -> hw -> new_app_break:Word32.t -> (Word32.t, Kerror.t) result
  val sbrk : alloc -> hw -> delta:int -> (Word32.t, Kerror.t) result
  val allocate_grant : alloc -> size:int -> align:int -> (Word32.t, Kerror.t) result
  val build_readonly_buffer : alloc -> addr:Word32.t -> len:int -> (Range.t, Kerror.t) result
  val build_readwrite_buffer : alloc -> addr:Word32.t -> len:int -> (Range.t, Kerror.t) result

  val configure_mpu : hw -> alloc -> unit
  (** The [setup_mpu] hook: push this process's configuration to hardware
      and enable enforcement. *)

  val disable_mpu : hw -> unit
  (** §2.1: "the MPU is disabled when control switches into the kernel" —
      called on every return to kernel context. *)

  val hw_accessible : hw -> Perms.access -> Range.t list
  (** What the hardware currently enforces (for correspondence checks). *)

  val mpu_snapshot : hw -> int list
  (** The live MPU register-file contents as a flat word list (see
      {!Region_intf.MPU.snapshot}) — the kernel's config scrubber compares
      a snapshot taken right after {!configure_mpu} against the live
      registers to detect out-of-band corruption. *)

  val mpu_restore : hw -> int list -> unit
  (** Diff-only front-door write-back of an {!mpu_snapshot} word list (see
      {!Region_intf.MPU.restore}). Serves the scrubber's repair action and
      the board snapshot subsystem's MPU restore. *)

  type alloc_snapshot
  (** An immutable copy of one allocation's logical state (breaks and
      regions/config) — the per-process piece of a board snapshot. *)

  val capture_alloc : alloc -> alloc_snapshot
  val restore_alloc : alloc -> alloc_snapshot -> unit
  (** Restore blits in place, so capsule-held references to the [alloc]
      stay valid across a restore. *)
end

(** TickTock: granular allocator over any granular MPU driver. *)
module Ticktock (M : Region_intf.MPU) : S with type hw = M.hw = struct
  module A = App_mem_alloc.Make (M)

  let name = "ticktock:" ^ M.arch_name

  type hw = M.hw
  type alloc = A.t

  let allocate = A.allocate_app_memory
  let memory_start = A.memory_start
  let memory_size = A.memory_size
  let app_break = A.app_break
  let kernel_break = A.kernel_break
  let accessible = A.accessible
  let set_obs = A.set_obs

  (* TickTock's brk does not touch the hardware: the new configuration is
     written at the next context switch (the removed redundant setup_mpu
     call of Figure 11). *)
  let brk alloc _hw ~new_app_break = A.brk alloc ~new_app_break
  let sbrk alloc _hw ~delta = A.sbrk alloc ~delta
  let allocate_grant alloc ~size ~align = A.allocate_grant alloc ~size ~align
  let build_readonly_buffer alloc ~addr ~len = A.build_readonly_buffer alloc ~addr ~len
  let build_readwrite_buffer alloc ~addr ~len = A.build_readwrite_buffer alloc ~addr ~len

  (* TickTock's setup_mpu performs the same register writes as Tock's plus
     a cheap region-id validation pass — the deliberate +7-cycle cost the
     paper reports and accepts (§6.2). *)
  let configure_mpu hw alloc =
    Cycles.tick ~n:(7 * Cycles.alu) Cycles.global;
    A.configure_mpu hw alloc

  let disable_mpu hw = M.disable hw
  let hw_accessible hw access = M.accessible_ranges hw access
  let mpu_snapshot hw = M.snapshot hw
  let mpu_restore hw words = M.restore hw words

  type alloc_snapshot = A.snapshot

  let capture_alloc = A.capture
  let restore_alloc = A.restore
end

(** Tock baseline: monolithic allocator over a monolithic MPU driver. *)
module Tock (M : Region_intf.MONOLITHIC) : S with type hw = M.hw = struct
  module A = Tock_allocator.Make (M)

  let name = "tock:" ^ M.arch_name

  type hw = M.hw
  type alloc = A.t

  let allocate = A.allocate_app_memory
  let memory_start = A.memory_start
  let memory_size = A.memory_size
  let app_break = A.app_break
  let kernel_break = A.kernel_break
  let accessible = A.accessible
  let set_obs = A.set_obs
  let brk alloc hw ~new_app_break = A.brk alloc hw ~new_app_break
  let sbrk alloc hw ~delta = A.sbrk alloc hw ~delta
  let allocate_grant alloc ~size ~align = A.allocate_grant alloc ~size ~align
  let build_readonly_buffer alloc ~addr ~len = A.build_readonly_buffer alloc ~addr ~len
  let build_readwrite_buffer alloc ~addr ~len = A.build_readwrite_buffer alloc ~addr ~len
  let configure_mpu hw alloc = A.configure_mpu hw alloc
  let disable_mpu hw = M.disable hw
  let hw_accessible hw access = M.accessible_ranges hw access
  let mpu_snapshot hw = M.snapshot hw
  let mpu_restore hw words = M.restore hw words

  type alloc_snapshot = A.snapshot

  let capture_alloc = A.capture
  let restore_alloc = A.restore
end
