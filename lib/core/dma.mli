(** DMA modeling and the safe [DmaCell] interface (§4.6, Figure 9).

    DMA is the escape hatch in the paper's proof: an engine programmed over
    MMIO with a plain base/length pair bypasses the MPU and every invariant
    this library verifies. Tock's [TakeCell] discipline is advisory — a
    driver can retake a buffer mid-flight and alias it.

    {!Cell} is TickTock's fix, by construction: [place] consumes ownership
    of a {!Buffer.t} and mints the only value {!Engine.start} accepts; while
    the cell holds the buffer, driver reads/writes of it are ownership
    violations; [completed] returns the buffer only once the engine is
    idle. {!Engine.start_raw} (the plain-usize MMIO path) and {!Take_cell}
    (the misuse-prone legacy interface) are kept so tests and examples can
    demonstrate the clobbering and aliasing the safe interface rules out. *)

type owner = Driver | Dma_engine

(** A kernel-owned data buffer with dynamic ownership tracking (our stand-in
    for rustc's borrow checking of [&'a mut T]). *)
module Buffer : sig
  type t

  val create : Memory.t -> addr:Word32.t -> len:int -> t
  val addr : t -> Word32.t
  val len : t -> int
  val range : t -> Range.t

  val read : t -> int -> int
  (** Driver read; violates when the DMA engine owns the buffer or the
      index is out of bounds. *)

  val write : t -> int -> int -> unit
end

(** The proof that a [usize] denotes a live, exclusively-owned DMA buffer. *)
module Wrapper : sig
  type t

  val base : t -> Word32.t
  val len : t -> int
end

(** The DMA engine: copies a modeled peripheral stream into memory with raw
    (MPU-bypassing) writes, like real bus-master hardware. *)
module Engine : sig
  type t

  val create : Memory.t -> t
  val is_busy : t -> bool

  val set_fill : t -> int -> unit
  (** The byte the modeled peripheral produces. *)

  val start_raw : t -> base:Word32.t -> len:int -> unit
  (** The unsafe MMIO path: nothing stops [base] from pointing at the
      kernel's stack. Kept to demonstrate the hazard. *)

  val start : t -> Wrapper.t -> unit
  (** The safe path: only a {!Wrapper} — i.e. only a placed buffer. *)

  val step : t -> int -> unit
  (** Advance the transfer by up to [n] bytes. *)

  val run_to_completion : t -> unit

  val inject_nack : t -> unit
  (** Fault injection: the bus NACKs the engine's next burst — that [step]
      makes no progress and the transfer retries. A transient stall, never
      data corruption. *)

  val nacks : t -> int
  (** NACKs absorbed so far. *)
end

(** Figure 9's [DmaCell]: ownership-transferring buffer hand-off. *)
module Cell : sig
  type t

  val create : unit -> t
  val is_some : t -> bool

  val place : t -> Buffer.t -> Wrapper.t option
  (** Take ownership of the buffer and mint its wrapper; [None] when the
      cell is occupied (DMA in progress). *)

  val completed : t -> Engine.t -> Buffer.t option
  (** Return the buffer to the driver. The paper marks this [unsafe]; our
      model makes the obligation checkable by requiring the engine to be
      idle (contract violation otherwise). *)
end

(** The misuse-prone legacy interface: [take] hands the buffer back with no
    regard for an in-flight transfer — the §4.6 aliasing bug. *)
module Take_cell : sig
  type t

  val create : unit -> t
  val put : t -> Buffer.t -> unit
  val take : t -> Buffer.t option
end
