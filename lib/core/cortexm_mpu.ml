(** TickTock's granular ARM Cortex-M MPU driver (§3.5).

    Implements {!Region_intf.MPU} for the PMSAv7 hardware model. All the
    power-of-two / alignment / subregion reasoning lives here and {e only}
    here; the generic allocator above never sees it. Each public method
    carries the refined contract of §4.1, checked on every call.

    Following the paper's performance observation (§6.2), subregion masks
    are computed with bitwise arithmetic rather than per-subregion loops. *)

module Hw = Mpu_hw.Armv7m_mpu
module Region = Cortexm_region

let arch_name = "cortex-m"

type hw = Hw.t

let region_count = Hw.region_count

(* Cycle model: this driver's own work — a handful of ALU ops for the size
   computation plus the bit-math for the subregion mask. *)
let charge_alloc () = Cycles.tick ~n:(14 * Cycles.alu) Cycles.global
let charge_update () = Cycles.tick ~n:(12 * Cycles.alu) Cycles.global

(* Pick a block/subregion geometry able to span [total_size] accessible
   bytes. Returns (region_size, enabled_subregions-per-use) with
   region_size a power of two. *)
let geometry ~total_size =
  let po2 = Math32.closest_power_of_two (max total_size Hw.min_region_size) in
  if po2 <= 128 then `Whole po2
  else begin
    let region_size = max (po2 / 2) Hw.min_subregion_region_size in
    let sub = region_size / 8 in
    let enabled = (total_size + sub - 1) / sub in
    `Subregions (region_size, sub, enabled)
  end

let postcondition ~site ~total_size ~perms (r0, r1) =
  (* §4.1 refined contract: first region set; regions contiguous; combined
     accessible span at least the requested size with the right perms. *)
  Verify.Violation.ensure (site ^ ": fst region set") (Region.is_set r0);
  Verify.Violation.ensure (site ^ ": fst perms") (Region.matches_perms r0 perms);
  let size0 = Option.value (Region.size r0) ~default:0 in
  let start0 = Option.value (Region.start r0) ~default:0 in
  let combined =
    if Region.is_set r1 then begin
      Verify.Violation.ensure (site ^ ": regions contiguous")
        (Region.start r1 = Some (start0 + size0));
      Verify.Violation.ensure (site ^ ": snd perms") (Region.matches_perms r1 perms);
      size0 + Option.value (Region.size r1) ~default:0
    end
    else size0
  in
  Verify.Violation.ensuref (site ^ ": span covers request") (combined >= total_size)
    "combined=%d requested=%d" combined total_size

let new_regions ~max_region_id ~unalloc_start ~unalloc_size ~total_size ~perms =
  Verify.Violation.requiref "new_regions: region ids" (max_region_id >= 1) "max=%d"
    max_region_id;
  Verify.Violation.requiref "new_regions: sizes" (total_size > 0 && unalloc_size >= 0)
    "total=%d unalloc=%d" total_size unalloc_size;
  charge_alloc ();
  let fits start accessible =
    start >= unalloc_start && start + accessible <= unalloc_start + unalloc_size
  in
  let result =
    match geometry ~total_size with
    | `Whole region_size ->
      let start = Math32.align_up unalloc_start ~align:region_size in
      if not (fits start region_size) then None
      else
        Some
          ( Region.create ~region_id:(max_region_id - 1) ~start ~size:region_size
              ~enabled_subregions:None ~perms,
            Region.empty ~region_id:max_region_id )
    | `Subregions (region_size, sub, enabled) ->
      if enabled > 16 then None
      else begin
        let start = Math32.align_up unalloc_start ~align:region_size in
        let accessible = enabled * sub in
        if not (fits start accessible) then None
        else if enabled <= 8 then
          Some
            ( Region.create ~region_id:(max_region_id - 1) ~start ~size:region_size
                ~enabled_subregions:(Some enabled) ~perms,
              Region.empty ~region_id:max_region_id )
        else
          Some
            ( Region.create ~region_id:(max_region_id - 1) ~start ~size:region_size
                ~enabled_subregions:None ~perms,
              Region.create ~region_id:max_region_id ~start:(start + region_size)
                ~size:region_size
                ~enabled_subregions:(Some (enabled - 8))
                ~perms )
      end
  in
  Option.iter (postcondition ~site:"new_regions" ~total_size ~perms) result;
  result

let update_regions ~max_region_id ~region_start ~available_size ~total_size ~perms =
  Verify.Violation.requiref "update_regions: region ids" (max_region_id >= 1) "max=%d"
    max_region_id;
  Verify.Violation.requiref "update_regions: sizes" (total_size > 0 && available_size >= 0)
    "total=%d available=%d" total_size available_size;
  charge_update ();
  let result =
    match geometry ~total_size with
    | `Whole region_size ->
      if
        (not (Math32.is_aligned region_start ~align:region_size))
        || region_size > available_size
      then None
      else
        Some
          ( Region.create ~region_id:(max_region_id - 1) ~start:region_start
              ~size:region_size ~enabled_subregions:None ~perms,
            Region.empty ~region_id:max_region_id )
    | `Subregions (region_size, sub, enabled) ->
      let accessible = enabled * sub in
      if
        enabled > 16
        || (not (Math32.is_aligned region_start ~align:region_size))
        || accessible > available_size
      then None
      else if enabled <= 8 then
        Some
          ( Region.create ~region_id:(max_region_id - 1) ~start:region_start
              ~size:region_size ~enabled_subregions:(Some enabled) ~perms,
            Region.empty ~region_id:max_region_id )
      else
        Some
          ( Region.create ~region_id:(max_region_id - 1) ~start:region_start
              ~size:region_size ~enabled_subregions:None ~perms,
            Region.create ~region_id:max_region_id ~start:(region_start + region_size)
              ~size:region_size
              ~enabled_subregions:(Some (enabled - 8))
              ~perms )
  in
  Option.iter (postcondition ~site:"update_regions" ~total_size ~perms) result;
  result

let create_exact_region ~region_id ~start ~size ~perms =
  Cycles.tick ~n:(6 * Cycles.alu) Cycles.global;
  if size <= 0 then None
  else begin
    let po2 = Math32.closest_power_of_two size in
    let exact_whole = size = po2 && Math32.is_aligned start ~align:po2 in
    let result =
      if exact_whole && po2 >= Hw.min_region_size then
        Some (Region.create ~region_id ~start ~size:po2 ~enabled_subregions:None ~perms)
      else if
        po2 >= Hw.min_subregion_region_size
        && size mod (po2 / 8) = 0
        && Math32.is_aligned start ~align:po2
      then
        Some
          (Region.create ~region_id ~start ~size:po2
             ~enabled_subregions:(Some (size / (po2 / 8)))
             ~perms)
      else None
    in
    Option.iter
      (fun r ->
        Verify.Violation.ensuref "create_exact_region: exact span"
          (Region.can_access r ~start ~end_:(start + size) ~perms)
          "start=%s size=%d" (Word32.to_hex start) size)
      result;
    result
  end

let configure_mpu hw regions =
  Array.iter
    (fun r ->
      if Region.is_set r then
        Hw.write_region hw ~index:(Region.region_id r) ~rbar:(Region.rbar r)
          ~rasr:(Region.rasr r)
      else Hw.clear_region hw ~index:(Region.region_id r))
    regions

let enable hw = Hw.set_enabled hw true
let disable hw = Hw.set_enabled hw false
let accessible_ranges hw access = Hw.accessible_ranges hw access

let snapshot hw =
  (if Hw.enabled hw then 1 else 0)
  :: List.concat
       (List.init Hw.region_count (fun i ->
            let rbar, rasr = Hw.read_region hw ~index:i in
            [ rbar; rasr ]))

(* Diff-only write-back through the front door: only registers whose live
   values differ are written, so hardware validation (and the cycle model)
   applies exactly to what changed. *)
let restore hw words =
  match words with
  | enable :: regs when List.length regs = 2 * Hw.region_count ->
    let rec go index = function
      | rbar :: rasr :: rest ->
        let live_rbar, live_rasr = Hw.read_region hw ~index in
        if live_rbar <> rbar || live_rasr <> rasr then Hw.write_region hw ~index ~rbar ~rasr;
        go (index + 1) rest
      | _ -> ()
    in
    go 0 regs;
    let en = enable <> 0 in
    if Hw.enabled hw <> en then Hw.set_enabled hw en
  | _ -> invalid_arg (arch_name ^ ": restore: malformed snapshot")
