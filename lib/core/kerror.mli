(** Kernel error codes for process-memory and syscall operations (a flat
    rendering of Tock's [ErrorCode]/[AllocateAppMemoryError] split). *)

type t =
  | Heap_error  (** MPU could not create the requested RAM regions *)
  | Flash_error  (** MPU could not create the flash region *)
  | Out_of_memory  (** block does not fit in the unallocated pool *)
  | Invalid_brk  (** brk/sbrk request outside the legal window *)
  | Grant_exhausted  (** grant allocation would cross the app break *)
  | Invalid_buffer  (** allow()ed buffer not inside app-accessible memory *)
  | No_such_process
  | Not_supported
  | Image_oversized
      (** image layout can never fit the target's flash/RAM regions — not a
          transient shortage ([Out_of_memory]) but a structurally
          impossible request, so OTA paths can refuse it up front *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
