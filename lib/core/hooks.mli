(** Per-method cycle instrumentation (§6.2, Figure 11).

    The paper adds hooks to Tock's and TickTock's process abstractions to
    count CPU cycles spent in each method. {!measure} is that hook: it runs
    a kernel method and attributes the cycles charged to
    {!Mach.Cycles.global} during the call to the method's row. The kernel
    wraps its [create] / [brk] / [allocate_grant] / [build_*_buffer] /
    [setup_mpu] paths in it; the Figure 11 bench reads the rows back. *)

type t

val create : unit -> t

val measure : t -> string -> (unit -> 'a) -> 'a
(** [measure hooks method_name f] runs [f], charging its global-counter
    cycle delta and one call to [method_name]'s row. *)

val mean : t -> string -> float option
(** Average cycles per call, [None] if the method was never measured. *)

val calls : t -> string -> int

val rows : t -> (string * int * int) list
(** [(method, calls, total_cycles)], sorted by method name. *)

val merge : into:t -> t -> unit
(** Accumulate another table's rows (used to average over several runs,
    as the paper averages three). *)

val capture : t -> (string * int * int) list
(** Snapshot the rows (same shape as {!rows}) for the board snapshot
    subsystem. *)

val restore : t -> (string * int * int) list -> unit
(** Write a {!capture}d row list back in place: existing row records are
    updated (outside references stay valid), rows absent from the snapshot
    are dropped. *)

val pp : Format.formatter -> t -> unit
