(** Per-method cycle instrumentation (§6.2).

    The paper adds hooks to Tock's and TickTock's process abstractions to
    count CPU cycles spent in each method (Figure 11). [measure] is that
    hook: it runs a kernel method and attributes the cycles charged to the
    global counter during the call to the method's row. *)

type row = { mutable calls : int; mutable cycles : int }

type t = (string, row) Hashtbl.t

let create () : t = Hashtbl.create 16

let row t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = { calls = 0; cycles = 0 } in
    Hashtbl.replace t name r;
    r

let measure t name f =
  let result, spent = Cycles.measure Cycles.global f in
  let r = row t name in
  r.calls <- r.calls + 1;
  r.cycles <- r.cycles + spent;
  result

let mean t name =
  match Hashtbl.find_opt t name with
  | Some r when r.calls > 0 -> Some (float_of_int r.cycles /. float_of_int r.calls)
  | Some _ | None -> None

let calls t name = match Hashtbl.find_opt t name with Some r -> r.calls | None -> 0

let rows t =
  Hashtbl.fold (fun name r acc -> (name, r.calls, r.cycles) :: acc) t []
  |> List.sort compare

(* Snapshot support: rows are the whole state. Restore writes through the
   existing row records where they exist so outside references stay valid. *)
let capture t = rows t

let restore t snap =
  let stale =
    Hashtbl.fold
      (fun name _ acc ->
        if List.exists (fun (n, _, _) -> n = name) snap then acc else name :: acc)
      t []
  in
  List.iter (Hashtbl.remove t) stale;
  List.iter
    (fun (name, calls, cycles) ->
      let r = row t name in
      r.calls <- calls;
      r.cycles <- cycles)
    snap

let merge ~into src =
  Hashtbl.iter
    (fun name r ->
      let dst = row into name in
      dst.calls <- dst.calls + r.calls;
      dst.cycles <- dst.cycles + r.cycles)
    src

let pp ppf t =
  Format.fprintf ppf "@[<v>%-28s %8s %12s %12s@," "Method" "Calls" "Cycles" "Mean";
  List.iter
    (fun (name, calls, cycles) ->
      Format.fprintf ppf "%-28s %8d %12d %12.2f@," name calls cycles
        (if calls = 0 then 0.0 else float_of_int cycles /. float_of_int calls))
    (rows t);
  Format.fprintf ppf "@]"
