(** Tock's {e original monolithic} Cortex-M MPU implementation — a faithful
    port of Figure 4a, kept as the evaluation baseline and as the vehicle for
    the paper's bug reproductions (§2.2, §3.4).

    The module is a functor over a fault-injection configuration:

    - [grant_overlap] reproduces the §3.4 bug (Tock issue #4366): when the
      aligned start pushes the enabled subregions past the kernel break, the
      mitigation doubles [region_size] but {e forgets to double}
      [mem_size_po2], so the last enabled subregion can still cover grant
      memory. The patched variant also doubles [mem_size_po2].
    - [brk_underflow] reproduces the §2.2 integer-overflow bug: with it, the
      [update_app_mem_region] path computes the enabled-subregion count from
      an unvalidated app break, so a malicious [brk] drives
      [num_enabled_subregions0 - 1] through zero and wraps to [usize::MAX].
      The patched variant validates the break against the region start
      first (the precondition Flux demanded).

    Note what this interface {e cannot} say: the layout it computes
    internally (the subregion-enforced end of app memory, the kernel break)
    is discarded on return — the disagreement problem. The one concession to
    verifiability is {!enabled_subregions_end}, the "explication" accessor
    of §3.4 used by the verifier to state the overlap postcondition. *)

module Hw = Mpu_hw.Armv7m_mpu

type faults = { grant_overlap : bool; brk_underflow : bool }

let upstream_faults = { grant_overlap = true; brk_underflow = true }
let patched_faults = { grant_overlap = false; brk_underflow = false }

exception Kernel_panic of string
(** The modeled Rust panic: what an unchecked underflow turns into when the
    resulting subregion arithmetic collapses (a crash, i.e. DoS — §2.2). *)

module Make (F : sig
  val faults : faults
end) =
struct
  let arch_name = "cortex-m(monolithic)"

  type hw = Hw.t

  (* Tock's CortexMConfig: the eight region slots plus the RAM-region
     geometry needed by update_app_mem_region. RAM uses regions 0 and 1;
     flash uses region 2. *)
  type config = {
    mutable regions : Cortexm_region.t array;
    mutable ram_region_start : Word32.t;
    mutable ram_region_size : int;
    mutable ram_num_enabled : int;
  }

  let ram_region0 = 0
  let ram_region1 = 1
  let flash_region = 2

  let new_config () =
    {
      regions = Array.init Hw.region_count (fun i -> Cortexm_region.empty ~region_id:i);
      ram_region_start = 0;
      ram_region_size = 0;
      ram_num_enabled = 0;
    }

  (* Region values are immutable, so copying the array is a deep copy. *)
  let copy_config c =
    {
      regions = Array.copy c.regions;
      ram_region_start = c.ram_region_start;
      ram_region_size = c.ram_region_size;
      ram_num_enabled = c.ram_num_enabled;
    }

  let blit_config ~src ~dst =
    dst.regions <- Array.copy src.regions;
    dst.ram_region_start <- src.ram_region_start;
    dst.ram_region_size <- src.ram_region_size;
    dst.ram_num_enabled <- src.ram_num_enabled

  (* Install the two RAM regions covering [num_enabled] prefix subregions
     starting at [region_start]. Tock builds the subregion masks with a
     per-subregion loop; we charge cycles accordingly. *)
  let set_ram_regions config ~region_start ~region_size ~num_enabled ~perms =
    Cycles.tick ~n:(num_enabled * (Cycles.alu + Cycles.branch)) Cycles.global;
    let first = min num_enabled 8 in
    config.regions.(ram_region0) <-
      Cortexm_region.create ~region_id:ram_region0 ~start:region_start ~size:region_size
        ~enabled_subregions:(Some first) ~perms;
    config.regions.(ram_region1) <-
      (if num_enabled > 8 then
         Cortexm_region.create ~region_id:ram_region1 ~start:(region_start + region_size)
           ~size:region_size
           ~enabled_subregions:(Some (min (num_enabled - 8) 8))
           ~perms
       else Cortexm_region.empty ~region_id:ram_region1);
    config.ram_region_start <- region_start;
    config.ram_region_size <- region_size;
    config.ram_num_enabled <- num_enabled

  (* Figure 4a, line for line. *)
  let allocate_app_mem_region ~config ~unalloc_start ~unalloc_size ~min_size ~app_size
      ~kernel_size ~perms =
    Cycles.tick ~n:(18 * Cycles.alu) Cycles.global;
    (* Make sure there is enough memory for app memory and kernel memory. *)
    let mem_size = max min_size (app_size + kernel_size) in
    let mem_size_po2 = ref (Math32.closest_power_of_two mem_size) in
    (* Subregions need blocks of at least 2 * 256 bytes. *)
    if !mem_size_po2 < 512 then mem_size_po2 := 512;
    (* The region should start as close as possible to the start of the
       unallocated memory. *)
    let region_start = ref unalloc_start in
    let region_size = ref (!mem_size_po2 / 2) in
    (* If the start and length don't align, move the region up. *)
    if !region_start mod !region_size <> 0 then
      region_start := !region_start + !region_size - (!region_start mod !region_size);
    let num_enabled_subregs = ref ((app_size * 8 / !region_size) + 1) in
    let subreg_size = !region_size / 8 in
    (* End address of enabled subregions and initial kernel memory break. *)
    let subregs_enabled_end = !region_start + (!num_enabled_subregs * subreg_size) in
    let kernel_mem_break = !region_start + !mem_size_po2 - kernel_size in
    if subregs_enabled_end > kernel_mem_break then begin
      region_size := !region_size * 2;
      if !region_start mod !region_size <> 0 then
        region_start := !region_start + !region_size - (!region_start mod !region_size);
      num_enabled_subregs := (app_size * 8 / !region_size) + 1;
      (* The comment in upstream Tock says the total size must double too —
         but the code did not do it. That is the #4366 bug. *)
      if not F.faults.grant_overlap then mem_size_po2 := !mem_size_po2 * 2
    end;
    if !region_start + !mem_size_po2 > unalloc_start + unalloc_size then None
    else begin
      set_ram_regions config ~region_start:!region_start ~region_size:!region_size
        ~num_enabled:!num_enabled_subregs ~perms;
      (* The computed subregs_enabled_end / kernel_mem_break are discarded:
         only (start, size) escape.  Disagreement, by construction. *)
      Some (!region_start, !mem_size_po2)
    end

  let enabled_subregions_end config =
    if config.ram_num_enabled = 0 then None
    else
      Some
        (config.ram_region_start + (config.ram_num_enabled * (config.ram_region_size / 8)))

  let update_app_mem_region ~config ~new_app_break ~kernel_break ~perms =
    let region_start = config.ram_region_start in
    let region_size = config.ram_region_size in
    if region_size = 0 then Error ()
    else begin
      Cycles.tick ~n:(8 * Cycles.alu) Cycles.global;
      let app_size =
        if F.faults.brk_underflow then
          (* Upstream: unchecked subtraction of unvalidated syscall input. *)
          Word32.sub new_app_break region_start
        else begin
          (* The validation Flux demanded as a precondition (§2.2). *)
          if new_app_break < region_start || new_app_break > kernel_break then raise Exit;
          new_app_break - region_start
        end
      in
      let num_enabled_subregions = (app_size * 8 / region_size) + 1 in
      (* The expression Flux flagged: with a wrapped app_size this huge
         index arithmetic collapses; the hardware write below would be
         handed an impossible subregion count. Model the resulting Rust
         panic. *)
      let last_subregion = num_enabled_subregions - 1 in
      (* A wrapped app_size yields an astronomical subregion index; the Rust
         code panics (debug) or misconfigures the MPU (release) here. A
         merely-too-large legitimate request falls through to the bounds
         check below and is refused. *)
      if last_subregion >= 1 lsl 20 then
        raise
          (Kernel_panic
             (Printf.sprintf "subregion index out of range: %d (app_break=%s)" last_subregion
                (Word32.to_hex new_app_break)));
      (* The upper-bound check was always present upstream; the missing
         piece was the lower-bound validation above. *)
      let subregs_enabled_end = region_start + (num_enabled_subregions * (region_size / 8)) in
      if subregs_enabled_end > kernel_break then Error ()
      else begin
        set_ram_regions config ~region_start ~region_size ~num_enabled:num_enabled_subregions
          ~perms;
        Ok ()
      end
    end

  let update_app_mem_region ~config ~new_app_break ~kernel_break ~perms =
    try update_app_mem_region ~config ~new_app_break ~kernel_break ~perms
    with Exit -> Error ()

  let allocate_exact_region ~config ~start ~size ~perms =
    Cycles.tick ~n:(6 * Cycles.alu) Cycles.global;
    if size <= 0 then Error ()
    else begin
      let po2 = Math32.closest_power_of_two size in
      if
        po2 >= Hw.min_region_size && size = po2 && Math32.is_aligned start ~align:po2
      then begin
        config.regions.(flash_region) <-
          Cortexm_region.create ~region_id:flash_region ~start ~size:po2
            ~enabled_subregions:None ~perms;
        Ok ()
      end
      else if
        po2 >= Hw.min_subregion_region_size
        && size mod (po2 / 8) = 0
        && Math32.is_aligned start ~align:po2
      then begin
        config.regions.(flash_region) <-
          Cortexm_region.create ~region_id:flash_region ~start ~size:po2
            ~enabled_subregions:(Some (size / (po2 / 8)))
            ~perms;
        Ok ()
      end
      else Error ()
    end

  let configure_mpu hw config =
    Array.iter
      (fun r ->
        if Cortexm_region.is_set r then
          Hw.write_region hw ~index:(Cortexm_region.region_id r) ~rbar:(Cortexm_region.rbar r)
            ~rasr:(Cortexm_region.rasr r)
        else Hw.clear_region hw ~index:(Cortexm_region.region_id r))
      config.regions

  let enable hw = Hw.set_enabled hw true
  let disable hw = Hw.set_enabled hw false
  let accessible_ranges hw access = Hw.accessible_ranges hw access

  let snapshot hw =
    (if Hw.enabled hw then 1 else 0)
    :: List.concat
         (List.init Hw.region_count (fun i ->
              let rbar, rasr = Hw.read_region hw ~index:i in
              [ rbar; rasr ]))

  (* Diff-only write-back through the front door (see {!Cortexm_mpu.restore}). *)
  let restore hw words =
    match words with
    | enable :: regs when List.length regs = 2 * Hw.region_count ->
      let rec go index = function
        | rbar :: rasr :: rest ->
          let live_rbar, live_rasr = Hw.read_region hw ~index in
          if live_rbar <> rbar || live_rasr <> rasr then Hw.write_region hw ~index ~rbar ~rasr;
          go (index + 1) rest
        | _ -> ()
      in
      go 0 regs;
      let en = enable <> 0 in
      if Hw.enabled hw <> en then Hw.set_enabled hw en
    | _ -> invalid_arg (arch_name ^ ": restore: malformed snapshot")
end

module Upstream = Make (struct
  let faults = upstream_faults
end)

module Patched = Make (struct
  let faults = patched_faults
end)
