(** Application flash images and placement (the TBF analog).

    Tock apps ship as Tock Binary Format objects placed in flash after the
    kernel. We model a compact TBF-style image: a fixed header (magic,
    version, total size, minimum RAM request, name) followed by the opaque
    application payload. The loader writes images into the flash window and
    — because the Cortex-M MPU wants power-of-two, size-aligned flash
    regions — pads each image to the next power of two and aligns its base
    to that size, exactly the placement discipline Tock's linker scripts
    impose. *)

let magic = 0x54424632 (* "TBF2" *)
let header_words = 6

type image = {
  app_name : string;
  min_ram : int;
  payload : string;  (** opaque app binary (our serialized program) *)
}

(* FNV-1a over the serialized header fields, name and payload: the modeled
   integrity footer (real Tock verifies cryptographic credentials in a TBF
   footer; a hash preserves the code path without a crypto library). *)
let checksum img =
  let h = ref 0x811C_9DC5 in
  let feed b = h := Word32.mul (!h lxor (b land 0xff)) 0x0100_0193 in
  let feed32 v =
    feed v;
    feed (v lsr 8);
    feed (v lsr 16);
    feed (v lsr 24)
  in
  feed32 magic;
  feed32 img.min_ram;
  feed32 (String.length img.app_name);
  feed32 (String.length img.payload);
  String.iter (fun c -> feed (Char.code c)) img.app_name;
  String.iter (fun c -> feed (Char.code c)) img.payload;
  !h

type placed = {
  image : image;
  flash_start : Word32.t;  (** base of the padded power-of-two block *)
  flash_size : int;  (** padded to a power of two *)
  entry : Word32.t;  (** first payload byte *)
}

let image_bytes img =
  (* header + name + payload + 4-byte credentials footer *)
  (4 * header_words) + String.length img.app_name + String.length img.payload + 4

let padded_size img = Math32.closest_power_of_two (max (image_bytes img) 512)

(* Serialize the header + payload into memory at [base]; charges the copy
   cost a real loader pays (this dominates Figure 11's [create] row). *)
let write_image mem ~base img =
  let name_len = String.length img.app_name in
  let payload_len = String.length img.payload in
  Cycles.tick ~n:((image_bytes img / 4 * Cycles.mem) + (8 * Cycles.alu)) Cycles.global;
  Memory.write32 mem base magic;
  Memory.write32 mem (base + 4) 2 (* version *);
  Memory.write32 mem (base + 8) (image_bytes img);
  Memory.write32 mem (base + 12) img.min_ram;
  Memory.write32 mem (base + 16) name_len;
  Memory.write32 mem (base + 20) payload_len;
  Memory.blit_string mem (base + (4 * header_words)) img.app_name;
  Memory.blit_string mem (base + (4 * header_words) + name_len) img.payload;
  Memory.write32 mem (base + (4 * header_words) + name_len + payload_len) (checksum img)

let read_image mem ~base =
  if Memory.read32 mem base <> magic then Error "bad TBF magic"
  else begin
    let name_len = Memory.read32 mem (base + 16) in
    let payload_len = Memory.read32 mem (base + 20) in
    if name_len > 64 || payload_len > 1 lsl 20 then Error "implausible TBF header"
    else begin
      let app_name = Memory.read_bytes mem (base + (4 * header_words)) name_len in
      let payload = Memory.read_bytes mem (base + (4 * header_words) + name_len) payload_len in
      Ok { app_name; min_ram = Memory.read32 mem (base + 12); payload }
    end
  end

(** Verify the credentials footer of an image in flash: recompute the hash
    over what is actually there and compare with the stored footer. *)
let verify_credentials mem ~base =
  match read_image mem ~base with
  | Error _ -> false
  | Ok img ->
    let stored =
      Memory.read32 mem
        (base + (4 * header_words) + String.length img.app_name + String.length img.payload)
    in
    stored = checksum img

(** Whether an image's layout could ever be placed on this board: padded
    flash block within the app-flash window and requested RAM within the
    app-SRAM window. *)
let fits img =
  padded_size img <= Range.size Layout.app_flash
  && img.min_ram >= 0
  && img.min_ram <= Range.size Layout.app_sram

(** Place an image at the next properly aligned spot at or after [cursor]
    inside the app-flash window; returns the placement and the new cursor. *)
let place mem ~cursor img =
  let size = padded_size img in
  let flash_start = Math32.align_up cursor ~align:size in
  if size > Range.size Layout.app_flash then
    (* a layout no app-flash window could ever hold: typed refusal, so OTA
       paths can distinguish a hostile/corrupt image from a full flash *)
    Error Kerror.Image_oversized
  else if flash_start + size > Range.end_ Layout.app_flash then Error Kerror.Out_of_memory
  else begin
    write_image mem ~base:flash_start img;
    Ok
      ( {
          image = img;
          flash_start;
          flash_size = size;
          entry = flash_start + (4 * header_words) + String.length img.app_name;
        },
        flash_start + size )
  end
