(** The shared campaign protocol: a work-stealing [Domain] pool with a
    deterministic, cell-index-ordered merge.

    Fuzz, chaos and fleet campaigns all have the same shape — [cells]
    independent units of work, each a pure function of its index, whose
    results must merge into the {e same} report no matter how many workers
    ran them or how the scheduler interleaved them. The merge discipline
    that guarantees this (results keyed by cell index, reports rendered
    from the index-ordered array) used to live separately in
    [Apps.Fuzz.campaign] and [Chaos.Campaign.run]; this module is the one
    implementation all three now ride on.

    Work distribution: cells are grouped into contiguous {e batches}
    ([batch] cells each — batching amortizes per-dispatch cost for light
    cells like fleet's snapshot-forked rounds; heavy campaigns pass
    [~batch:1]). Batches are dealt round-robin onto per-worker deques;
    each worker pops its own deque from the bottom and, when empty,
    steals a batch from the top of the first non-empty victim. Deques
    only shrink after the deal, so a worker that finds every deque empty
    on a full scan can safely exit.

    Determinism argument: a cell's result depends only on its index
    (workers hold per-worker state from [init], but campaign cells are
    constructed so that state is equivalent across workers — e.g. a
    freshly-booted board restored to its pristine snapshot). The results
    array is keyed by index, so scheduling, stealing and worker count
    affect only wall-clock, never contents. [commit] calls are serialized
    under a mutex but arrive in completion order — consumers (the fleet
    store) must key committed records by index, not order. *)

type stats = {
  ps_batches : int;  (** batches dealt *)
  ps_steals : int;  (** batches a worker took from another's deque *)
}

type deque = { ids : int array; mutable lo : int; mutable hi : int; mu : Mutex.t }

let pop_own d =
  Mutex.lock d.mu;
  let r =
    if d.lo < d.hi then begin
      d.hi <- d.hi - 1;
      Some d.ids.(d.hi)
    end
    else None
  in
  Mutex.unlock d.mu;
  r

let steal_from d =
  Mutex.lock d.mu;
  let r =
    if d.lo < d.hi then begin
      let b = d.ids.(d.lo) in
      d.lo <- d.lo + 1;
      Some b
    end
    else None
  in
  Mutex.unlock d.mu;
  r

(** [run ~cells ~init ~cell ()] evaluates [cell state i] for every
    [i < cells] and returns the results in index order, plus pool stats.

    - [jobs] overrides the worker count (default {!Jobs.count}); it is
      capped to the number of batches. [jobs = 1] runs sequentially on the
      calling domain — no spawns, same results.
    - [init w] builds worker [w]'s private state (a booted board, a
      pristine-image registry) on that worker's own domain.
    - [skip i] (checked immediately before running cell [i]) suppresses a
      cell: its slot stays [None]. Campaign resume and deterministic
      kill-emulation hang off this.
    - [commit i r], when given, runs under a global mutex after cell [i]
      completes — the hook for append-only result stores. *)
let run ?jobs ?(batch = 16) ?(skip = fun _ -> false) ?commit ~cells ~init ~cell () =
  if cells < 0 then invalid_arg "Pool.run: negative cell count";
  let batch = max 1 batch in
  let nbatches = (cells + batch - 1) / batch in
  let jobs =
    let j = match jobs with Some j -> Jobs.clamp j | None -> Jobs.count () in
    max 1 (min j nbatches)
  in
  let results = Array.make (max cells 1) None in
  let commit_mu = Mutex.create () in
  let commit1 i r =
    match commit with
    | None -> ()
    | Some f ->
      Mutex.lock commit_mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock commit_mu) (fun () -> f i r)
  in
  let run_batch st b out =
    let first = b * batch and last = min cells ((b + 1) * batch) - 1 in
    for i = first to last do
      if not (skip i) then begin
        let r = cell st i in
        out := (i, r) :: !out;
        commit1 i r
      end
    done
  in
  let steals = Atomic.make 0 in
  if jobs <= 1 then begin
    let st = init 0 in
    let out = ref [] in
    for b = 0 to nbatches - 1 do
      run_batch st b out
    done;
    List.iter (fun (i, r) -> results.(i) <- Some r) !out
  end
  else begin
    (* Deal batches round-robin — worker [w] owns batches w, w+jobs, ... —
       then let the steals rebalance whatever finishes early. *)
    let deques =
      Array.init jobs (fun w ->
          let mine = ref [] in
          let b = ref w in
          while !b < nbatches do
            mine := !b :: !mine;
            b := !b + jobs
          done;
          (* owner pops the bottom (hi end) = highest ids first; keep the
             natural order instead: store ascending, pop from hi *)
          { ids = Array.of_list (List.rev !mine); lo = 0; hi = List.length !mine; mu = Mutex.create () })
    in
    let worker w () =
      let st = init w in
      let out = ref [] in
      let rec next () =
        match pop_own deques.(w) with
        | Some b -> Some b
        | None ->
          let rec scan k =
            if k >= jobs then None
            else
              let v = (w + k) mod jobs in
              match steal_from deques.(v) with
              | Some b ->
                Atomic.incr steals;
                Some b
              | None -> scan (k + 1)
          in
          scan 1
      and drain () =
        match next () with
        | Some b ->
          run_batch st b out;
          drain ()
        | None -> ()
      in
      drain ();
      !out
    in
    List.init jobs (fun w -> Stdlib.Domain.spawn (worker w))
    |> List.iter (fun d ->
           List.iter (fun (i, r) -> results.(i) <- Some r) (Stdlib.Domain.join d))
  end;
  ((if cells = 0 then [||] else results), { ps_batches = nbatches; ps_steals = Atomic.get steals })
