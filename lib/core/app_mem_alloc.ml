(** TickTock's hardware-agnostic process memory allocator (Figure 4b, §4.3).

    [Make] is generic over the granular {!Region_intf.MPU} abstraction, so
    this single piece of code serves Cortex-M and all three PMP chips — the
    reuse the paper's redesign buys.

    The allocator owns the paper's [AppMemoryAllocator] invariant: its
    [breaks] (the kernel's logical view) and [regions] (what will be written
    to hardware) must always correspond —

    - [can_access_flash]: the flash region grants exactly read-execute over
      [\[flash_start, flash_start+flash_size)] and nothing outside it;
    - [can_access_ram]: the RAM region(s) grant exactly read-write over
      [\[memory_start, app_break)] and nothing outside it;
    - [cannot_access_other]: no other region overlaps the process memory
      block — in particular not the grant region.

    The invariant is re-checked after every mutation (the Flux analog of
    checking it wherever the struct is created or updated through a mutable
    reference). Because the logical view is {e derived from} the regions the
    MPU methods return — never recomputed independently — the disagreement
    problem of §3.2 cannot arise. *)

module Make (M : Region_intf.MPU) = struct
  module Region = M.Region

  let max_ram_region_number = 1
  let flash_region_number = 2

  type t = {
    mutable breaks : App_breaks.t;
    regions : Region.t array;
    mutable obs : Obs.Event.sink option;
  }

  let set_obs t sink = t.obs <- sink

  (* --- the §4.3 invariant --- *)

  let ram_region_accessible t =
    let r0 = t.regions.(max_ram_region_number - 1) in
    let r1 = t.regions.(max_ram_region_number) in
    match (Region.start r0, Region.size r0) with
    | Some s0, Some n0 ->
      if Region.is_set r1 then
        match (Region.start r1, Region.size r1) with
        | Some s1, Some n1 when s1 = s0 + n0 -> Some (s0, n0 + n1)
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> None
      else Some (s0, n0)
    | Some _, None | None, Some _ | None, None -> None

  let can_access_flash t =
    let r = t.regions.(flash_region_number) in
    let start = App_breaks.flash_start t.breaks in
    let end_ = start + App_breaks.flash_size t.breaks in
    Region.can_access r ~start ~end_ ~perms:Perms.Read_execute_only
    && (start = 0 || not (Region.overlaps r ~lo:0 ~hi:(start - 1)))
    && not (Region.overlaps r ~lo:end_ ~hi:Word32.max_value)

  let can_access_ram t =
    let start = App_breaks.memory_start t.breaks in
    let end_ = App_breaks.app_break t.breaks in
    let r0 = t.regions.(max_ram_region_number - 1) in
    let r1 = t.regions.(max_ram_region_number) in
    match ram_region_accessible t with
    | Some (s, n) ->
      s = start && s + n = end_
      && Region.matches_perms r0 Perms.Read_write_only
      && ((not (Region.is_set r1)) || Region.matches_perms r1 Perms.Read_write_only)
      && (start = 0
         || not
              (Region.overlaps t.regions.(max_ram_region_number - 1) ~lo:0 ~hi:(start - 1)
              || Region.overlaps t.regions.(max_ram_region_number) ~lo:0 ~hi:(start - 1)))
      && not
           (Region.overlaps t.regions.(max_ram_region_number - 1) ~lo:end_
              ~hi:Word32.max_value
           || Region.overlaps t.regions.(max_ram_region_number) ~lo:end_ ~hi:Word32.max_value)
    | None -> false

  let cannot_access_other t =
    let lo = App_breaks.memory_start t.breaks in
    let hi = App_breaks.block_end t.breaks - 1 in
    let ok = ref true in
    Array.iter
      (fun r ->
        let id = Region.region_id r in
        if id <> max_ram_region_number - 1 && id <> max_ram_region_number then
          if Region.overlaps r ~lo ~hi then ok := false)
      t.regions;
    !ok

  let check_invariant t =
    Verify.Violation.invariant "AppMemoryAllocator: can_access_flash" (can_access_flash t);
    Verify.Violation.invariant "AppMemoryAllocator: can_access_ram" (can_access_ram t);
    Verify.Violation.invariant "AppMemoryAllocator: cannot_access_other" (cannot_access_other t);
    t

  (* --- construction (Figure 4b) --- *)

  let allocate_app_memory ~unalloc_start ~unalloc_size ~min_size ~app_size ~kernel_size
      ~flash_start ~flash_size =
    Cycles.tick ~n:(10 * Cycles.alu) Cycles.global;
    let ( let* ) = Result.bind in
    (* Ask the MPU for up to two regions covering process RAM. *)
    let ideal_app_mem_size = max min_size app_size in
    let* ram_region0, ram_region1 =
      M.new_regions ~max_region_id:max_ram_region_number ~unalloc_start ~unalloc_size
        ~total_size:ideal_app_mem_size ~perms:Perms.Read_write_only
      |> Option.to_result ~none:Kerror.Heap_error
    in
    (* Compute the actual start and size from the regions — the hardware's
       truth, not a recomputation. *)
    let* memory_start = Region.start ram_region0 |> Option.to_result ~none:Kerror.Heap_error in
    let* fst_region_size = Region.size ram_region0 |> Option.to_result ~none:Kerror.Heap_error in
    let snd_region_size = Option.value (Region.size ram_region1) ~default:0 in
    let app_mem_size = fst_region_size + snd_region_size in
    (* End of process-accessible memory; grant goes right after. *)
    let app_break = memory_start + app_mem_size in
    let memory_size = app_mem_size + kernel_size in
    if memory_start + memory_size > unalloc_start + unalloc_size then Error Kerror.Out_of_memory
    else begin
      let* flash_region =
        M.create_exact_region ~region_id:flash_region_number ~start:flash_start
          ~size:flash_size ~perms:Perms.Read_execute_only
        |> Option.to_result ~none:Kerror.Flash_error
      in
      let breaks =
        App_breaks.create ~memory_start ~memory_size ~app_break
          ~kernel_break:(memory_start + memory_size) ~flash_start ~flash_size
      in
      let regions = Array.init M.region_count (fun i -> Region.empty ~region_id:i) in
      regions.(max_ram_region_number - 1) <- ram_region0;
      regions.(max_ram_region_number) <- ram_region1;
      regions.(flash_region_number) <- flash_region;
      Ok (check_invariant { breaks; regions; obs = None })
    end

  (* --- observation --- *)

  let breaks t = t.breaks
  let regions t = t.regions
  let app_break t = App_breaks.app_break t.breaks
  let kernel_break t = App_breaks.kernel_break t.breaks
  let memory_start t = App_breaks.memory_start t.breaks
  let memory_size t = App_breaks.memory_size t.breaks

  let accessible t =
    [ App_breaks.flash_range t.breaks; App_breaks.ram_range t.breaks ]

  (* --- brk / sbrk (§2.1's syscalls) --- *)

  let brk t ~new_app_break =
    Cycles.tick ~n:(8 * Cycles.alu) Cycles.global;
    let start = memory_start t in
    let kb = kernel_break t in
    (* The validation the monolithic kernel forgot (§2.2): the requested
       break must lie inside [memory_start, kernel_break). *)
    if new_app_break < start || new_app_break >= kb then Error Kerror.Invalid_brk
    else begin
      let total_size = max (new_app_break - start) 1 in
      match
        M.update_regions ~max_region_id:max_ram_region_number ~region_start:start
          ~available_size:(kb - start - 1) ~total_size ~perms:Perms.Read_write_only
      with
      | None -> Error Kerror.Invalid_brk
      | Some (r0, r1) ->
        let size0 = Option.value (Region.size r0) ~default:0 in
        let size1 = Option.value (Region.size r1) ~default:0 in
        let actual_break = start + size0 + size1 in
        t.regions.(max_ram_region_number - 1) <- r0;
        t.regions.(max_ram_region_number) <- r1;
        t.breaks <- App_breaks.with_app_break t.breaks actual_break;
        ignore (check_invariant t);
        (match t.obs with
        | None -> ()
        | Some emit ->
            emit
              (Obs.Event.Region_update
                 { start; size = size0 + size1; app_break = actual_break; kernel_break = kb }));
        Ok actual_break
    end

  let sbrk t ~delta =
    let target = Word32.add (app_break t) delta in
    brk t ~new_app_break:target

  (* --- grant allocation ---

     TickTock's fast path (Figure 11): pure pointer arithmetic on the
     breaks; no MPU recomputation is needed because the grant region was
     never accessible to the process in the first place. *)

  let allocate_grant t ~size ~align =
    Cycles.tick ~n:(7 * Cycles.alu) Cycles.global;
    if size <= 0 || not (Math32.is_pow2 align) then Error Kerror.Grant_exhausted
    else begin
      let proposed = Math32.align_down (kernel_break t - size) ~align in
      if proposed <= app_break t || proposed < memory_start t then
        Error Kerror.Grant_exhausted
      else begin
        t.breaks <- App_breaks.with_kernel_break t.breaks proposed;
        ignore (check_invariant t);
        (match t.obs with
        | None -> ()
        | Some emit -> emit (Obs.Event.Grant_placed { addr = proposed; size }));
        Ok proposed
      end
    end

  (* --- allow()ed buffer validation ---

     TickTock validates buffers directly against the logical breaks — a
     couple of comparisons — rather than walking the MPU configuration. *)

  let build_readwrite_buffer t ~addr ~len =
    Cycles.tick ~n:(5 * Cycles.alu) Cycles.global;
    if len < 0 then Error Kerror.Invalid_buffer
    else begin
      let buf = Range.make_checked ~start:addr ~size:len in
      match buf with
      | Some buf when Range.contains_range (App_breaks.ram_range t.breaks) buf -> Ok buf
      | Some _ | None -> Error Kerror.Invalid_buffer
    end

  let build_readonly_buffer t ~addr ~len =
    Cycles.tick ~n:(6 * Cycles.alu) Cycles.global;
    if len < 0 then Error Kerror.Invalid_buffer
    else begin
      let buf = Range.make_checked ~start:addr ~size:len in
      match buf with
      | Some buf
        when Range.contains_range (App_breaks.ram_range t.breaks) buf
             || Range.contains_range (App_breaks.flash_range t.breaks) buf ->
        Ok buf
      | Some _ | None -> Error Kerror.Invalid_buffer
    end

  (* --- hardware configuration --- *)

  let configure_mpu hw t =
    M.configure_mpu hw t.regions;
    M.enable hw

  (* --- snapshot (capture/restore the allocator's logical state) ---

     [App_breaks.t] and region descriptors are immutable values, so the
     snapshot is just the breaks plus a shallow copy of the region array.
     Restore blits in place: every alias to this [t] stays valid, and the
     invariant is re-checked because the snapshot may meet a [t] that has
     diverged since capture. *)

  type snapshot = { snap_breaks : App_breaks.t; snap_regions : Region.t array }

  let capture t = { snap_breaks = t.breaks; snap_regions = Array.copy t.regions }

  let restore t s =
    t.breaks <- s.snap_breaks;
    Array.blit s.snap_regions 0 t.regions 0 (Array.length t.regions);
    ignore (check_invariant t)
end
