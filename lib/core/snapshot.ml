(** Whole-board snapshot, restore and fork — the substrate for fleet-scale
    campaigns (fuzzing, differential testing, chaos) that boot a board
    {e once} and fork thousands of rounds from the post-boot image instead
    of paying a cold boot per round.

    A board assembles a {!target}: its memory plus an ordered list of
    {!component}s, one per stateful layer (CPU, SysTick, NVIC, UART, GPIO,
    SCB, the MPU hardware device, and — {e always last} — the kernel). The
    ordering contract matters twice on restore: memory is restored first
    (which flushes the bus decision cache, bumps the code generation so no
    stale decoded block or micro-TLB entry survives, and emits a
    [Buscache_flush] observability event), then the component thunks run in
    list order, so the kernel component — which rewrites the observability
    recorder ring — runs last and erases that flush event from the record.
    A forked run is therefore byte-for-byte identical to a booted run: same
    console, same trace, same obs event stream, same cycle counter.

    In-memory snapshots capture everything. On-disk snapshots
    (["TICKSNAP"], versioned) carry only the memory image — component state
    is OCaml closures and does not serialize — so {!save} refuses
    non-pristine targets (processes already loaded): a pristine post-boot
    image restored onto a freshly-booted identical board reconstructs the
    full state by construction. {!load} verifies magic, version,
    architecture, board name and the memory-layout fingerprint before
    touching the board, and the memory fingerprint after. *)

(** One stateful layer of a board. [co_capture] captures {e now} and
    returns the thunk that writes that state back; [co_fingerprint]
    digests the live state (the roundtrip oracle). Component captures and
    restores are host-side: they charge no model cycles and emit no
    observability events of their own. *)
type component = {
  co_name : string;
  co_capture : unit -> unit -> unit;
  co_fingerprint : unit -> int64;
}

(** A snapshotable board: architecture and board identity (checked on
    restore and load), the machine memory, the stateful components in
    restore order ({e kernel last}), and the live process count (pristine
    gate for {!save}). *)
type target = {
  tg_arch : string;  (** e.g. ["armv7m"], ["armv8m"], ["rv32-pmp"] *)
  tg_board : string;  (** the board constructor's name *)
  tg_mem : Memory.t;
  tg_components : component list;
  tg_proc_count : unit -> int;
}

type t = {
  sn_arch : string;
  sn_board : string;
  sn_procs : int;  (** process count at capture (pristine gate) *)
  sn_mem : Memory.snapshot;
  sn_restores : (string * (unit -> unit)) list;  (** component order *)
  sn_fp : int64;  (** whole-board fingerprint at capture *)
}

(** Splice extra components (capsule-owned devices like UARTs and GPIO
    banks, which only the capsule set knows about) into a board's target,
    {e before} the final component — the kernel stays last, preserving the
    restore-order contract. *)
let add_components target extra =
  let components =
    match List.rev target.tg_components with
    | last :: rev_init -> List.rev rev_init @ extra @ [ last ]
    | [] -> extra
  in
  { target with tg_components = components }

let fingerprint target =
  List.fold_left
    (fun h c -> Fp.int64 (Fp.string h c.co_name) (c.co_fingerprint ()))
    (Fp.int64
       (Fp.string (Fp.string Fp.seed target.tg_arch) target.tg_board)
       (Memory.fingerprint target.tg_mem))
    target.tg_components

let capture target =
  {
    sn_arch = target.tg_arch;
    sn_board = target.tg_board;
    sn_procs = target.tg_proc_count ();
    sn_mem = Memory.capture target.tg_mem;
    sn_restores =
      List.map (fun c -> (c.co_name, c.co_capture ())) target.tg_components;
    sn_fp = fingerprint target;
  }

let check_identity ~what target ~arch ~board =
  if arch <> target.tg_arch then
    invalid_arg
      (Printf.sprintf "Snapshot.%s: architecture mismatch (snapshot %s, board %s)" what arch
         target.tg_arch);
  if board <> target.tg_board then
    invalid_arg
      (Printf.sprintf "Snapshot.%s: board mismatch (snapshot %s, board %s)" what board
         target.tg_board)

let restore target t =
  check_identity ~what:"restore" target ~arch:t.sn_arch ~board:t.sn_board;
  (* Memory first: flushes the decision cache and bumps the code
     generation, so nothing cached against pre-restore bytes survives.
     Then the components in capture order — the kernel last, restoring the
     obs recorder ring over the memory-restore flush event. *)
  Memory.restore target.tg_mem t.sn_mem;
  List.iter (fun (_, thunk) -> thunk ()) t.sn_restores

(** [fork target snap f]: restore and run one campaign round. The named
    entry point for the boot-once/fork-per-round pattern; exactly
    [restore] followed by [f ()]. *)
let fork target t f =
  restore target t;
  f ()

let captured_fingerprint t = t.sn_fp

(* --- the on-disk format --- *)

let magic = "TICKSNAP"
let version = 1

(** Digest of the compiled-in memory map. Two builds agree on this iff
    flash/SRAM bases and sizes and the kernel/app split all agree — the
    precondition for a pristine memory image meaning the same thing. *)
let layout_fingerprint () =
  let range h r = Fp.int (Fp.int h (Range.start r)) (Range.size r) in
  List.fold_left range
    (Fp.ints Fp.seed
       [ Layout.flash_base; Layout.flash_size; Layout.sram_base; Layout.sram_size ])
    [ Layout.kernel_flash; Layout.kernel_sram; Layout.app_flash; Layout.app_sram ]

type header = {
  hd_version : int;
  hd_arch : string;
  hd_board : string;
  hd_layout_fp : int64;
  hd_mem_fp : int64;
}

let save target path =
  let procs = target.tg_proc_count () in
  if procs > 0 then
    invalid_arg
      (Printf.sprintf
         "Snapshot.save: board has %d live process(es); on-disk snapshots must be pristine \
          (capture before loading processes)"
         procs);
  let snap = Memory.capture target.tg_mem in
  let header =
    {
      hd_version = version;
      hd_arch = target.tg_arch;
      hd_board = target.tg_board;
      hd_layout_fp = layout_fingerprint ();
      hd_mem_fp = Memory.fingerprint target.tg_mem;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc header [];
      Marshal.to_channel oc (Memory.snapshot_pages snap) [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then invalid_arg ("Snapshot.load: not a snapshot file: " ^ path);
      let header : header = Marshal.from_channel ic in
      if header.hd_version <> version then
        invalid_arg
          (Printf.sprintf "Snapshot.load: unsupported version %d (supported: %d)"
             header.hd_version version);
      let pages : (int * string) list = Marshal.from_channel ic in
      (header, pages))

(** Inspect a snapshot file's header without needing a board. *)
let describe path =
  let header, pages = read_file path in
  (header, List.length pages)

(** Load a pristine on-disk snapshot onto a freshly-booted [target].
    Refuses (raises [Invalid_argument]) on magic/version/arch/board/layout
    mismatch, and verifies the restored memory fingerprint against the
    header before returning. *)
let load target path =
  let header, pages = read_file path in
  check_identity ~what:"load" target ~arch:header.hd_arch ~board:header.hd_board;
  if header.hd_layout_fp <> layout_fingerprint () then
    invalid_arg "Snapshot.load: memory-layout mismatch (snapshot built against a different map)";
  Memory.restore target.tg_mem (Memory.snapshot_of_pages pages);
  let live_fp = Memory.fingerprint target.tg_mem in
  if live_fp <> header.hd_mem_fp then
    invalid_arg
      (Printf.sprintf "Snapshot.load: memory fingerprint mismatch (header %s, restored %s)"
         (Fp.to_hex header.hd_mem_fp) (Fp.to_hex live_fp))

(* --- the pristine-image registry --- *)

(** Per-worker registry of pristine post-boot images, keyed by board name:
    the fleet orchestrator boots each (arch, board) combination {e once}
    per worker, captures the post-boot snapshot, and restores it in front
    of every campaign cell scheduled onto that worker — thousands of
    board-instances for the price of a handful of boots. Registries are
    not thread-safe and are meant to be worker-local (one per domain);
    the boot/fork counters feed the fleet's host-side metrics. *)
module Registry = struct
  type snap = t

  type 'a entry = {
    re_payload : 'a;  (** whatever the boot produced, typically an [Instance.t] *)
    re_target : target;
    re_snap : snap;  (** the pristine post-boot image *)
    mutable re_forks : int;
  }

  type 'a t = {
    rg_tbl : (string, 'a entry) Hashtbl.t;
    mutable rg_boots : int;
  }

  let create () = { rg_tbl = Hashtbl.create 8; rg_boots = 0 }
  let boots r = r.rg_boots
  let forks r = Hashtbl.fold (fun _ e acc -> acc + e.re_forks) r.rg_tbl 0

  (** [find_or_boot r key ~boot] returns the registered entry for [key],
      booting (and capturing the pristine image of) a fresh board via
      [boot] on first use. [boot] must return the payload and its
      snapshot target {e post-boot, pre-load} — the captured image is
      what every subsequent {!fork} restores. *)
  let find_or_boot r key ~boot =
    match Hashtbl.find_opt r.rg_tbl key with
    | Some e -> e
    | None ->
      let payload, target = boot () in
      let e = { re_payload = payload; re_target = target; re_snap = capture target; re_forks = 0 } in
      Hashtbl.add r.rg_tbl key e;
      r.rg_boots <- r.rg_boots + 1;
      e

  (** [fork e f]: restore the entry's pristine image and run one campaign
      cell — the registry-level twin of the top-level {!val:fork}. *)
  let fork e f =
    e.re_forks <- e.re_forks + 1;
    restore e.re_target e.re_snap;
    f e.re_payload
end
