(** The capsule interface: Tock's cooperatively-scheduled driver layer.

    Capsules in Tock are untrusted kernel components written in safe Rust;
    the kernel routes the syscall ABI's driver-addressed calls (command /
    allow / subscribe) to them and trusts the type system — not the MPU —
    to confine them. Our capsules are OCaml modules behind this narrow
    interface: they can only touch a process through the {!process_handle}
    the kernel passes in, which mediates buffer access, grant allocation and
    upcall scheduling exactly the way Tock's [Grant]/[ProcessBuffer] APIs
    do.

    The builtin drivers 0–3 (alarm, console, sensor, button) stay in the
    kernel for the evaluation suite; capsules registered here extend or
    override the driver space. *)

type process_handle = {
  ph_pid : int;
  ph_name : string;
  ph_memory_start : unit -> Word32.t;
  ph_allowed_ro : unit -> Range.t option;
      (** the buffer the process allowed this driver, read-only *)
  ph_allowed_rw : unit -> Range.t option;
  ph_read_byte : Word32.t -> (int, Kerror.t) result;
      (** kernel-mediated read of process memory: valid only inside a
          buffer the process allowed this driver *)
  ph_write_byte : Word32.t -> int -> (unit, Kerror.t) result;
      (** kernel-mediated write: valid only inside an allowed-rw buffer *)
  ph_grant : size:int -> align:int -> (Word32.t, Kerror.t) result;
      (** kernel-owned per-process driver state in the grant region —
          get-or-create like Tock's [Grant::enter]: the first call
          allocates, later calls return the same block *)
  ph_schedule_upcall : upcall_id:int -> arg:int -> unit;
      (** queue an upcall; delivered at the process's next yield *)
  ph_subscribed : unit -> int option;  (** upcall id the process subscribed *)
}

(** Kernel services a capsule may hold on to — the analog of the kernel
    references Tock capsules receive at board initialization. [svc_handle]
    lets cross-process capsules (IPC) reach their clients; every access
    still flows through the mediated handle. *)
type services = {
  svc_handle : pid:int -> driver:int -> process_handle option;
      (** handle of a live process, scoped to the given driver's allowed
          buffers/subscriptions *)
  svc_live_pids : unit -> int list;
  svc_now : unit -> int;
  svc_ps : unit -> string;  (** the kernel's process listing (for consoles) *)
}

(** {1 The snapshotable-state contract}

    One signature for every stateful layer of the board — memory, CPU,
    devices, MPU models, capsules, the kernel itself. [capture] produces an
    opaque state value sharing no {e mutable} data with the live object;
    [restore] writes a captured state back {e in place}, so every alias to
    the live object (capsule-held process handles, the kernel's device
    references) stays valid; [fingerprint] digests the live state to a
    64-bit value, equal iff the states are behaviourally equal — the
    snapshot test suite's roundtrip oracle. *)
module type SNAPSHOTABLE = sig
  type t

  type state
  (** Opaque captured state. Immutable by convention: capturing then
      mutating the live [t] must not change an already-captured [state]. *)

  val capture : t -> state
  val restore : t -> state -> unit
  val fingerprint : t -> int64
end

(** The first-class form of {!SNAPSHOTABLE}, for the record-shaped capsule
    layer and the board-level snapshot target: [sn_capture] closes over the
    live object and returns a restore thunk. *)
type snapshotter = {
  sn_name : string;
  sn_capture : unit -> (unit -> unit);
      (** capture now; the returned thunk restores that captured state *)
  sn_fingerprint : unit -> int64;
}

(** One driver. The kernel calls these hooks with the {e calling} process's
    handle; [cap_tick] runs every scheduler tick (the bottom half). *)
type t = {
  driver_num : int;
  cap_name : string;
  cap_init : services -> unit;
  cap_command : process_handle -> cmd:int -> arg1:int -> arg2:int -> Word32.t;
  cap_allowed_ro : process_handle -> Range.t -> unit;
  cap_allowed_rw : process_handle -> Range.t -> unit;
  cap_subscribed : process_handle -> upcall_id:int -> unit;
  cap_tick : now:int -> unit;
  cap_has_work : unit -> bool;
      (** pending device work (e.g. UART RX) — keeps the scheduler awake
          even with no runnable process, like an interrupt source *)
  cap_proc_died : pid:int -> unit;
      (** the kernel notifies every capsule when a process faults or exits,
          so cross-process capsules (IPC) can unblock peers waiting on it
          instead of leaving them wedged *)
  cap_snapshot : snapshotter option;
      (** capture/restore hook for the board snapshot subsystem; [None]
          (the {!stub} default) marks a stateless capsule *)
}

(** A do-nothing capsule to build real ones from. *)
let stub ~driver_num ~name =
  {
    driver_num;
    cap_name = name;
    cap_init = (fun _ -> ());
    cap_command = (fun _ ~cmd:_ ~arg1:_ ~arg2:_ -> 0);
    cap_allowed_ro = (fun _ _ -> ());
    cap_allowed_rw = (fun _ _ -> ());
    cap_subscribed = (fun _ ~upcall_id:_ -> ());
    cap_tick = (fun ~now:_ -> ());
    cap_has_work = (fun () -> false);
    cap_proc_died = (fun ~pid:_ -> ());
    cap_snapshot = None;
  }
