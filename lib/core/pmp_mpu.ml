(** TickTock's granular RISC-V PMP driver.

    A functor over the chip description (the paper verifies three RV32
    chips; {!Mpu_hw.Pmp.chips} lists ours). PMP's flexibility makes the
    granular methods nearly trivial — a region is an exact 4-byte-aligned
    range — which is exactly the point of the abstraction: the hardware
    quirks that remain (granularity, entry budget) stay in this file. *)

module Hw = Mpu_hw.Pmp
module Region = Pmp_region

module Make (C : sig
  val chip : Hw.chip
end) =
struct
  let arch_name = "rv32-pmp:" ^ C.chip.Hw.chip_name

  module Region = Region

  type hw = Hw.t

  (* Each logical region consumes a TOR entry pair; on ePMP chips the top
     two pairs are reserved for the kernel's locked Smepmp entries. *)
  let region_count = (C.chip.Hw.entry_count / 2) - if C.chip.Hw.epmp then 2 else 0

  let grain = C.chip.Hw.granularity

  let postcondition ~site ~total_size ~perms r0 =
    Verify.Violation.ensure (site ^ ": region set") (Region.is_set r0);
    Verify.Violation.ensure (site ^ ": perms") (Region.matches_perms r0 perms);
    Verify.Violation.ensuref (site ^ ": span covers request")
      (Option.value (Region.size r0) ~default:0 >= total_size)
      "size=%d requested=%d"
      (Option.value (Region.size r0) ~default:0)
      total_size

  let new_regions ~max_region_id ~unalloc_start ~unalloc_size ~total_size ~perms =
    Verify.Violation.requiref "pmp new_regions: region ids"
      (max_region_id >= 1 && max_region_id < region_count)
      "max=%d" max_region_id;
    Verify.Violation.requiref "pmp new_regions: sizes" (total_size > 0 && unalloc_size >= 0)
      "total=%d unalloc=%d" total_size unalloc_size;
    Cycles.tick ~n:(8 * Cycles.alu) Cycles.global;
    let start = Math32.align_up unalloc_start ~align:grain in
    let size = Math32.align_up total_size ~align:grain in
    if start + size > unalloc_start + unalloc_size then None
    else begin
      let r0 = Region.create ~region_id:(max_region_id - 1) ~start ~size ~perms in
      postcondition ~site:"pmp new_regions" ~total_size ~perms r0;
      Some (r0, Region.empty ~region_id:max_region_id)
    end

  let update_regions ~max_region_id ~region_start ~available_size ~total_size ~perms =
    Verify.Violation.requiref "pmp update_regions: region ids"
      (max_region_id >= 1 && max_region_id < region_count)
      "max=%d" max_region_id;
    Cycles.tick ~n:(6 * Cycles.alu) Cycles.global;
    if not (Math32.is_aligned region_start ~align:grain) then None
    else begin
      let size = Math32.align_up total_size ~align:grain in
      if size > available_size then None
      else begin
        let r0 = Region.create ~region_id:(max_region_id - 1) ~start:region_start ~size ~perms in
        postcondition ~site:"pmp update_regions" ~total_size ~perms r0;
        Some (r0, Region.empty ~region_id:max_region_id)
      end
    end

  let create_exact_region ~region_id ~start ~size ~perms =
    Cycles.tick ~n:(4 * Cycles.alu) Cycles.global;
    if size <= 0 || size mod grain <> 0 || not (Math32.is_aligned start ~align:grain) then None
    else begin
      let r = Region.create ~region_id ~start ~size ~perms in
      Verify.Violation.ensure "pmp create_exact_region: exact span"
        (Region.can_access r ~start ~end_:(start + size) ~perms);
      Some r
    end

  let configure_mpu hw regions =
    Array.iter
      (fun r ->
        let i = Region.region_id r in
        if Region.is_set r then begin
          Hw.set_entry hw ~index:(2 * i)
            ~cfg:(Hw.encode_cfg ~r:false ~w:false ~x:false ~mode:Hw.Off ~lock:false)
            ~addr:(Region.pmpaddr_lo r);
          Hw.set_entry hw ~index:((2 * i) + 1) ~cfg:(Region.cfg r) ~addr:(Region.pmpaddr_hi r)
        end
        else begin
          Hw.clear_entry hw ~index:(2 * i);
          Hw.clear_entry hw ~index:((2 * i) + 1)
        end)
      regions

  let enable hw = if C.chip.Hw.epmp then Hw.set_mmwp hw true

  (* Kernel entry does not relax PMP: machine mode is unconstrained by the
     user-mode entries, and the ePMP mseccfg bits are sticky on real
     silicon — there is nothing to disable. *)
  let disable _hw = ()
  let accessible_ranges hw access = Hw.accessible_ranges hw access

  let snapshot hw =
    (if Hw.mml hw then 1 else 0)
    :: List.concat
         (List.init C.chip.Hw.entry_count (fun i ->
              let cfg, addr = Hw.read_entry hw ~index:i in
              [ cfg; addr ]))

  (* Diff-only write-back through the front door: a changed locked entry —
     or an mseccfg flip on a chip without ePMP — raises [Invalid_argument]
     exactly as the direct CSR write would. *)
  let restore hw words =
    match words with
    | mml :: entries when List.length entries = 2 * C.chip.Hw.entry_count ->
      let rec go index = function
        | cfg :: addr :: rest ->
          let live_cfg, live_addr = Hw.read_entry hw ~index in
          if live_cfg <> cfg || live_addr <> addr then Hw.set_entry hw ~index ~cfg ~addr;
          go (index + 1) rest
        | _ -> ()
      in
      go 0 entries;
      let m = mml <> 0 in
      if Hw.mml hw <> m then Hw.set_mml hw m
    | _ -> invalid_arg (arch_name ^ ": restore: malformed snapshot")
end

module E310 = Make (struct
  let chip = Hw.sifive_e310
end)

module Earlgrey = Make (struct
  let chip = Hw.earlgrey
end)

module QemuRv32 = Make (struct
  let chip = Hw.qemu_rv32_virt
end)
