(** Per-process kernel state.

    Parametric in the allocator type so the same record serves both memory
    managers. Mirrors Tock's [Process] object: identity, scheduling state,
    the memory allocator, the saved user stack pointer, the stored-state
    block where the context switch saves r4–r11 (allocated, like Tock's,
    inside the kernel-owned grant region), syscall bookkeeping (allowed
    buffers, subscriptions), and the console output used by differential
    testing. *)

type state =
  | Ready
  | Yielded  (** blocked in [yield] until an upcall is pending *)
  | Faulted of string
  | Exited of int

(** What the kernel does when the process faults — Tock's [FaultResponse].
    [Panic] stops the whole system (debugging boards), [Stop] quarantines
    the process (the default), [Restart] reinitializes its memory and runs
    it again from the top immediately. [Restart_backoff] restarts too, but
    defers each restart by a deterministic exponential delay
    [min max_delay (base_delay * 2^(n-1))] kernel ticks (n = recent fault
    count), and forgets one recent fault per [decay_span] healthy ticks —
    a flapping process degrades gracefully instead of restart-storming the
    scheduler, while a process that faults rarely never exhausts its
    budget. *)
type fault_policy =
  | Panic
  | Stop
  | Restart of { max_restarts : int }
  | Restart_backoff of {
      max_restarts : int;  (** budget counted against {e recent} faults *)
      base_delay : int;  (** first-restart delay, kernel ticks *)
      max_delay : int;  (** backoff cap, kernel ticks *)
      decay_span : int;  (** healthy ticks that forgive one recent fault *)
    }

type 'alloc t = {
  pid : int;
  name : string;
  alloc : 'alloc;
  flash : Loader.placed;
  regs_base : Word32.t;  (** stored-state block in the grant region *)
  mutable state : state;
  mutable program : Userland.program;
  mutable fed_inputs : int list;
      (** every input ever fed to [program], newest first — programs are
          deterministic closures, so [program_factory] plus a replay of
          this log rebuilds the closure at its exact current point (the
          snapshot subsystem's process-restore path) *)
  mutable psp : Word32.t;
  mutable last_result : Word32.t;
  mutable allowed_ro : (int * Range.t) list;  (** driver -> buffer *)
  mutable allowed_rw : (int * Range.t) list;
  mutable subscriptions : (int * int) list;  (** driver -> upcall id *)
  mutable alarm_at : int option;  (** tick at which the alarm upcall fires *)
  mutable grants : (int * Word32.t) list;  (** driver -> grant block *)
  pending_upcalls : (int * int) Queue.t;  (** (upcall id, argument) *)
  output : Buffer.t;
  fault_policy : fault_policy;
  program_factory : (unit -> Userland.program) option;  (** for [Restart] *)
  initial_break : Word32.t;  (** app break at creation, for restart *)
  mutable restarts : int;  (** lifetime total, monotonic (ps/metrics) *)
  mutable recent_faults : int;  (** faults within the decay horizon *)
  mutable healthy_since : int;  (** tick the decay accounting last ran *)
  mutable restart_at : int option;  (** deferred (backoff) restart due tick *)
  mutable run_since_syscall : int;
      (** model cycles executed since the last syscall — the software
          watchdog's budget accounting *)
  mutable slices : int;  (** scheduler slices received *)
  mutable syscall_count : int;
  mutable mem_watermark : int;
      (** high-water mark of [app_break - memory_start], in bytes *)
}

let is_runnable t =
  match t.state with Ready -> true | Yielded | Faulted _ | Exited _ -> false

let is_live t = match t.state with Ready | Yielded -> true | Faulted _ | Exited _ -> false

let print t s = Buffer.add_string t.output s

let output t = Buffer.contents t.output

let state_to_string = function
  | Ready -> "ready"
  | Yielded -> "yielded"
  | Faulted msg -> "faulted: " ^ msg
  | Exited code -> Printf.sprintf "exited(%d)" code

let pp ppf t =
  Format.fprintf ppf "process %d %S: %s psp=%s" t.pid t.name (state_to_string t.state)
    (Word32.to_hex t.psp)
