(** A first-class, type-erased view of a running kernel.

    {!Kernel.Make} produces a distinct module per memory manager; benches,
    differential testing and examples want to iterate over {e all} kernel
    configurations uniformly. [t] erases the functor types behind plain
    closures — the OCaml idiom for the trait objects the evaluation harness
    would use in Rust. *)

type mem_stats = {
  total : int;  (** process memory block size *)
  app : int;  (** stack + data + heap: [app_break - memory_start] *)
  grant : int;  (** kernel-owned: [block_end - kernel_break] *)
  unused : int;  (** slack between app break and kernel break *)
}

type t = {
  kernel_name : string;
  load :
    name:string ->
    payload:string ->
    program:Userland.program ->
    min_ram:int ->
    grant_reserve:int ->
    heap_headroom:int ->
    (int, Kerror.t) result;
  (** Load a process; returns its pid. *)
  load_factory :
    name:string ->
    payload:string ->
    factory:(unit -> Userland.program) ->
    min_ram:int ->
    (int, Kerror.t) result;
  (** Like [load], but with a program factory: the process snapshots
      exactly (the kernel rebuilds its closure by replay on restore), so
      mid-run topologies holding it stay forkable. *)
  procs : unit -> (int * string) list;
  (** Live process table: [(pid, name)] in pid order. *)
  boot_load :
    registry:(string -> Userland.program option) -> require_credentials:bool -> int;
  (** Tock-style boot loading: walk app flash parsing TBF headers, creating
      a process per image whose name the registry resolves; returns how
      many loaded. The reboot path of power-loss testing: flash survives
      the cut, this walk rebuilds the process set from it. *)
  run : max_ticks:int -> unit;
  proc_output : int -> string option;
  proc_state : int -> string option;
  proc_exit : int -> int option;  (** exit code, when exited *)
  proc_faulted : int -> bool;
  proc_mem_stats : int -> mem_stats option;
  proc_isolation_ok : int -> bool;
  proc_sbrk : int -> int -> (Word32.t, Kerror.t) result;
  (** Direct kernel-side sbrk, for microbenchmarks. *)
  hooks : unit -> Hooks.t;
  console : unit -> string;
  ticks : unit -> int;
  icache_stats : unit -> Fluxarm.Icache.stats option;
  (** Decode/block-cache statistics of the switcher's CPU; [None] when the
      configuration has no machine-code CPU (the RISC-V [Sim_switch]). *)
  icache : unit -> Fluxarm.Icache.t option;
  (** The switcher CPU's live icache itself — the coverage-guided fuzzer
      needs [Icache.set_coverage]/[cov_reset]/[cov_classified] on it, not
      just the stats record. [None] exactly when [icache_stats] is. *)
  buscache_stats : unit -> int * int;
  (** [(hits, misses)] of the memory bus's MPU access-decision cache — the
      companion to [icache_stats] that used to be missing. *)
  metrics : unit -> Obs.Metrics.snapshot;
  (** The unified metrics snapshot: registry (syscall-latency histograms,
      fault/restart counters) plus every polled stat — per-method cycle
      hooks, bus/icache cache counters, per-process memory gauges. *)
  obs : unit -> Obs.Recorder.t option;
  (** The cross-layer event recorder, when tracing is attached. *)
  reseed : int -> unit;
  (** Cheap per-fork reseeding: re-seed the board's deterministic entropy
      sources (the RNG capsule's xorshift stream) in place, without a
      reboot. Fleet campaign cells forked from one pristine image call
      this right after the restore so each cell sees a distinct — but
      index-determined — entropy stream. [Kernel.instance] leaves it a
      no-op; board assemblies that attach seeded devices override it. *)
  snap_target : Snapshot.target option;
  (** The board's snapshot target — memory plus every stateful component in
      restore order — when the constructor assembled one. [Kernel.instance]
      leaves it [None]; board constructors override it, because only the
      board knows the full device complement. *)
  regs : unit -> (string * string) list;
  (** Architectural register file as [(name, hex-value)] pairs, for the
      replay navigator's [regs] view. Kernels whose switcher has no
      machine-code CPU (the RISC-V [Sim_switch]) report the empty list. *)
  mem_read : addr:Word32.t -> len:int -> string;
  (** Raw bus bytes at [addr]; a pure debug read that bypasses the MPU and
      the decision cache, so inspecting memory never perturbs a replay. *)
  mpu_describe : unit -> string;
  (** Human-readable dump of the live MPU/PMP programming. [Kernel.instance]
      leaves it [""]; board constructors override it with the concrete
      hardware model's pretty-printer. *)
}
