(** Kernel event tracing — the analog of Tock's debug/process-console
    tooling.

    A bounded ring of scheduler-visible events: process lifecycle, slices,
    syscalls with results, upcall deliveries, faults and restarts. Cheap
    enough to leave enabled; bounded so a chatty system cannot exhaust host
    memory. Attach one to a kernel via [Kernel.Make(...).create ~trace]. *)

type event =
  | Created of { pid : int; pname : string }
  | Scheduled of int  (** the pid got a slice *)
  | Syscall of { pid : int; call : Userland.call; result : Word32.t }
  | Upcall of { pid : int; upcall_id : int; arg : int }
  | Faulted of { pid : int; reason : string }
  | Exited of { pid : int; code : int }
  | Restarted of int

type entry = { at : int;  (** kernel tick *) event : event }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 events; the oldest are overwritten. *)

val record : t -> tick:int -> event -> unit

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Events lost to ring wrap-around. *)

val events : t -> entry list
(** Events still in the ring, oldest first. *)

val capture : t -> entry option array * int
(** Ring contents + event count, for the board snapshot subsystem. *)

val restore : t -> entry option array * int -> unit

val faults : t -> (int * string) list
(** (pid, reason) for every fault still in the ring. *)

val syscalls_of : t -> int -> (Userland.call * Word32.t) list
(** The syscall history of one process (calls still in the ring). *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
