(** The process console — Tock's interactive kernel shell over UART.

    The capsule's bottom half drains the UART receive FIFO; on a newline it
    interprets the accumulated line as a command and writes the response
    back out the transmitter:

    - [ps]     — the kernel's process listing
    - [uptime] — current kernel tick
    - [help]   — command list

    No process is involved at all: this is a kernel-side diagnostic surface
    (driver number {!driver_num} is claimed only so the capsule gets its
    [cap_init] services and tick). *)

open Ticktock

let driver_num = 11

let capsule uart =
  let svc : Capsule_intf.services option ref = ref None in
  let line = Buffer.create 32 in
  let respond s = Mpu_hw.Uart.write_string_blocking uart s in
  let run_command cmd =
    match String.trim cmd with
    | "" -> ()
    | "ps" -> (
      match !svc with
      | Some services -> respond (services.Capsule_intf.svc_ps ())
      | None -> respond "console not initialized\n")
    | "uptime" -> (
      match !svc with
      | Some services ->
        respond (Printf.sprintf "up %d ticks\n" (services.Capsule_intf.svc_now ()))
      | None -> respond "console not initialized\n")
    | "help" -> respond "commands: ps uptime help\n"
    | other -> respond (Printf.sprintf "unknown command %S (try help)\n" other)
  in
  let tick ~now =
    ignore now;
    let rec drain () =
      match Mpu_hw.Uart.read_byte uart with
      | None -> ()
      | Some b ->
        if b = Char.code '\n' then begin
          run_command (Buffer.contents line);
          Buffer.clear line
        end
        else Buffer.add_char line (Char.chr b);
        drain ()
    in
    drain ()
  in
  let snapshotter =
    {
      Capsule_intf.sn_name = "process-console";
      sn_capture =
        (fun () ->
          (* the UART itself is captured at the machine layer; the capsule
             only owns the partial input line *)
          let pending = Buffer.contents line in
          fun () ->
            Buffer.clear line;
            Buffer.add_string line pending);
      sn_fingerprint = (fun () -> Fp.string Fp.seed (Buffer.contents line));
    }
  in
  { (Capsule_intf.stub ~driver_num ~name:"process-console") with
    Capsule_intf.cap_init = (fun s -> svc := Some s);
    cap_tick = tick;
    cap_has_work = (fun () -> Mpu_hw.Uart.rx_available uart);
    cap_snapshot = Some snapshotter;
  }
