(** Inter-process communication capsule, after Tock's [ipc] driver.

    Services register under their process name; clients discover a service
    by writing its name into an allowed buffer, then exchange notifications
    (upcalls) and share their allowed read-write buffer with the service.
    All cross-process reach goes through driver-scoped handles obtained
    from the kernel services — a capsule can only touch what each process
    explicitly allowed to {e this} driver.

    Driver number 9. Commands:
    - 0: register the calling process as a service; returns its pid
    - 1: discover — match the allowed-ro buffer's contents against
         registered service names; returns the service pid
    - 2 (arg1 = pid): notify the service; its upcall argument is the
         client's pid
    - 3 (arg1 = pid): notify that client back
    - 4 (arg1 = pid, arg2 = offset): read one byte from the {e peer}'s
         shared (allowed-rw) buffer — the shared-memory path
    - 5 (arg1 = pid, arg2 = offset << 8 | byte): write one byte into the
         peer's shared buffer (only possible because the peer allowed it
         read-write to this driver)

    The capsule tracks outstanding requests (a cmd-2 notify not yet
    answered by cmd 3): when a process dies mid-exchange, every peer still
    waiting on it is woken with an error upcall instead of staying wedged
    in [yield] forever.

    [copy_nack] is a fault-injection hook: while positive, each
    shared-buffer copy command (4/5) decrements it and fails — a transient
    bus NACK a retrying client masks. *)

open Ticktock

let driver_num = 9

(* The error a dead peer delivers: the upcall argument clients get instead
   of the server's pid. Pids are small non-negative ints, so this is
   unambiguous. *)
let peer_died = Userland.failure

type state = {
  mutable services : (string * int) list;  (** name -> pid *)
  mutable pending : (int * int) list;  (** (server pid, waiting client pid) *)
  mutable svc : Capsule_intf.services option;
}

let read_name (ph : Capsule_intf.process_handle) =
  match ph.Capsule_intf.ph_allowed_ro () with
  | None -> None
  | Some buf ->
    let len = min (Range.size buf) 32 in
    let rec go i acc =
      if i >= len then Some acc
      else
        match ph.Capsule_intf.ph_read_byte (Range.start buf + i) with
        | Ok 0 -> Some acc
        | Ok b -> go (i + 1) (acc ^ String.make 1 (Char.chr b))
        | Error _ -> None
    in
    go 0 ""

let capsule ?(copy_nack = ref 0) () =
  let st = { services = []; pending = []; svc = None } in
  let init svc = st.svc <- Some svc in
  let peer_handle pid =
    match st.svc with
    | None -> None
    | Some svc -> svc.Capsule_intf.svc_handle ~pid ~driver:driver_num
  in
  let command (ph : Capsule_intf.process_handle) ~cmd ~arg1 ~arg2 =
    if cmd = 0 then begin
      st.services <-
        (ph.Capsule_intf.ph_name, ph.Capsule_intf.ph_pid)
        :: List.remove_assoc ph.Capsule_intf.ph_name st.services;
      ph.Capsule_intf.ph_pid
    end
    else if cmd = 1 then begin
      match read_name ph with
      | None -> Userland.failure
      | Some name -> (
        match List.assoc_opt name st.services with
        | Some pid -> pid
        | None -> Userland.failure)
    end
    else if cmd = 2 || cmd = 3 then begin
      match peer_handle arg1 with
      | None -> Userland.failure
      | Some peer ->
        let me = ph.Capsule_intf.ph_pid in
        (* track the exchange: a cmd-2 notify leaves the client waiting on
           the server until the server's cmd-3 reply *)
        if cmd = 2 then st.pending <- (arg1, me) :: st.pending
        else st.pending <- List.filter (fun p -> p <> (me, arg1)) st.pending;
        peer.Capsule_intf.ph_schedule_upcall ~upcall_id:cmd ~arg:me;
        Userland.success
    end
    else if (cmd = 4 || cmd = 5) && !copy_nack > 0 then begin
      decr copy_nack;
      Userland.failure
    end
    else if cmd = 4 then begin
      (* read a byte of the peer's shared buffer *)
      match peer_handle arg1 with
      | None -> Userland.failure
      | Some peer -> (
        match peer.Capsule_intf.ph_allowed_rw () with
        | Some buf when arg2 >= 0 && arg2 < Range.size buf -> (
          match peer.Capsule_intf.ph_read_byte (Range.start buf + arg2) with
          | Ok b -> b
          | Error _ -> Userland.failure)
        | Some _ | None -> Userland.failure)
    end
    else if cmd = 5 then begin
      (* write a byte into the peer's shared buffer *)
      let offset = arg2 lsr 8 and byte = arg2 land 0xff in
      match peer_handle arg1 with
      | None -> Userland.failure
      | Some peer -> (
        match peer.Capsule_intf.ph_allowed_rw () with
        | Some buf when offset >= 0 && offset < Range.size buf -> (
          match peer.Capsule_intf.ph_write_byte (Range.start buf + offset) byte with
          | Ok () -> Userland.success
          | Error _ -> Userland.failure)
        | Some _ | None -> Userland.failure)
    end
    else Userland.failure
  in
  let proc_died ~pid =
    (* wake every client still waiting on the dead process with an error
       upcall (delivered as the cmd-3 reply it will never get), then forget
       the dead process's service registration and exchanges *)
    List.iter
      (fun (server, client) ->
        if server = pid then
          match peer_handle client with
          | None -> ()
          | Some peer -> peer.Capsule_intf.ph_schedule_upcall ~upcall_id:3 ~arg:peer_died)
      st.pending;
    st.pending <- List.filter (fun (server, client) -> server <> pid && client <> pid) st.pending;
    st.services <- List.filter (fun (_, p) -> p <> pid) st.services
  in
  let snapshotter =
    {
      Capsule_intf.sn_name = "ipc";
      sn_capture =
        (fun () ->
          (* immutable assoc lists: sharing by reference is a deep capture;
             [svc] is wiring, not state, and survives untouched *)
          let services = st.services and pending = st.pending and nack = !copy_nack in
          fun () ->
            st.services <- services;
            st.pending <- pending;
            copy_nack := nack);
      sn_fingerprint =
        (fun () ->
          let h =
            List.fold_left
              (fun h (name, pid) -> Fp.int (Fp.string h name) pid)
              (Fp.int Fp.seed (List.length st.services))
              st.services
          in
          let h =
            List.fold_left
              (fun h (server, client) -> Fp.int (Fp.int h server) client)
              (Fp.int h (List.length st.pending))
              st.pending
          in
          Fp.int h !copy_nack);
    }
  in
  { (Capsule_intf.stub ~driver_num ~name:"ipc") with
    Capsule_intf.cap_init = init;
    cap_command = command;
    cap_proc_died = proc_died;
    cap_snapshot = Some snapshotter;
  }
