(** RNG capsule (Tock's [rng] driver, number 8 here).

    The process allows a read-write buffer and commands [get n]: the
    capsule fills [n] bytes through the mediated handle from a
    deterministic xorshift32 stream (seeded per board, so runs are
    reproducible) and schedules the completion upcall with the count.

    [stall] is a fault-injection hook: while positive, each [get] command
    decrements it and fails — the modeled entropy source has transiently
    run dry, and a retrying client masks the fault. *)

open Ticktock

let driver_num = 8

let capsule_reseed ?(seed = 0x2545_F491) ?(stall = ref 0) () =
  let norm seed = if seed = 0 then 1 else seed land Word32.mask in
  let state = ref (norm seed) in
  let next_byte () =
    (* xorshift32 *)
    let x = !state in
    let x = x lxor (x lsl 13) land Word32.mask in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land Word32.mask in
    state := x;
    x land 0xff
  in
  let command (ph : Capsule_intf.process_handle) ~cmd ~arg1 ~arg2 =
    ignore arg2;
    if cmd = 0 then Userland.success
    else if cmd = 1 && !stall > 0 then begin
      decr stall;
      Userland.failure
    end
    else if cmd = 1 then begin
      match ph.Capsule_intf.ph_allowed_rw () with
      | None -> Userland.failure
      | Some buf ->
        let len = min arg1 (Range.size buf) in
        let filled = ref 0 in
        (try
           for i = 0 to len - 1 do
             match ph.Capsule_intf.ph_write_byte (Range.start buf + i) (next_byte ()) with
             | Ok () -> incr filled
             | Error _ -> raise Exit
           done
         with Exit -> ());
        ph.Capsule_intf.ph_schedule_upcall ~upcall_id:0 ~arg:!filled;
        !filled
    end
    else Userland.failure
  in
  let snapshotter =
    {
      Capsule_intf.sn_name = "rng";
      sn_capture =
        (fun () ->
          let s = !state and st = !stall in
          fun () ->
            state := s;
            stall := st);
      sn_fingerprint = (fun () -> Fp.int (Fp.int Fp.seed !state) !stall);
    }
  in
  ( { (Capsule_intf.stub ~driver_num ~name:"rng") with
      Capsule_intf.cap_command = command;
      cap_snapshot = Some snapshotter;
    },
    (* cheap per-fork reseeding: fleet cells forked from one pristine image
       re-point the xorshift stream here, right after the restore, instead
       of rebuilding the board to change its entropy *)
    fun seed -> state := norm seed )

let capsule ?seed ?stall () = fst (capsule_reseed ?seed ?stall ())
