(** The standard campaign board assembly.

    Every campaign subsystem (fleet, fuzzcov, fabric, replay) used to carry
    its own copy of the same three steps: look a board constructor up by
    name, assemble it with the standard capsule set ({!Board_set.standard},
    RNG seed [0x5EED]), and splice the capsule devices into the snapshot
    target while wiring the RNG reseed hook into [Instance.reseed]. This
    module is that code path, once. Harnesses keep their own board-name
    subsets (and their own error messages) and delegate the assembly here.

    The [0x5EED] seed is load-bearing: it is what makes two boards of the
    same name byte-identical across processes, which is what lets a TICKRPL
    bundle recorded by one campaign be replayed by another process. *)

open Ticktock

(** Every named board a campaign can assemble: the fleet's verified six
    plus the upstream/patched monolithic pair the coverage fuzzer targets. *)
let builders : (string * (capsules:Capsule_intf.t list -> unit -> Instance.t)) list =
  [
    ("ticktock-arm", fun ~capsules () -> Boards.instance_ticktock_arm ~capsules ());
    ("ticktock-arm-mc", fun ~capsules () -> Boards.instance_ticktock_arm_mc ~capsules ());
    ("ticktock-arm-v8", fun ~capsules () -> Boards.instance_ticktock_arm_v8 ~capsules ());
    ("ticktock-e310", fun ~capsules () -> Boards.instance_ticktock_e310 ~capsules ());
    ("ticktock-earlgrey", fun ~capsules () -> Boards.instance_ticktock_earlgrey ~capsules ());
    ("ticktock-qemu", fun ~capsules () -> Boards.instance_ticktock_qemu ~capsules ());
    ("tock-arm-upstream", fun ~capsules () -> Boards.instance_tock_arm ~capsules ());
    ("tock-arm-patched", fun ~capsules () -> Boards.instance_tock_arm_patched ~capsules ());
  ]

let board_names = List.map fst builders

(** [make ?what ?extra name] boots the named board with the standard capsule
    set (plus [extra] capsules, prepended — the fabric's radio endpoint),
    splices the capsule devices into the snapshot target and wires the RNG
    reseed hook. [what] names the caller in error messages. *)
let make ?(what = "Std_board") ?(extra = []) name =
  let mk =
    match List.assoc_opt name builders with
    | Some mk -> mk
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown board %S (one of: %s)" what name
           (String.concat ", " board_names))
  in
  let capsules, devs = Board_set.standard ~rng_seed:0x5EED () in
  let k = mk ~capsules:(extra @ capsules) () in
  let tgt =
    match k.Instance.snap_target with
    | Some tgt -> tgt
    | None -> invalid_arg (Printf.sprintf "%s: board %s has no snapshot target" what name)
  in
  {
    k with
    Instance.snap_target = Some (Snapshot.add_components tgt (Board_set.components devs));
    reseed = devs.Board_set.reseed;
  }
