(** Button capsule over GPIO inputs, with edge-triggered upcalls.

    Commands: 0 = number of buttons; 1 = read level of button [arg1];
    2 = enable interrupts for button [arg1]; 3 = disable. The capsule's
    bottom half polls the pins each tick and schedules an upcall (argument:
    [button_index * 2 + level]) to every subscribed process when a level
    changes — the pattern of Tock's button capsule.

    Driver number 7. *)

open Ticktock

let driver_num = 7

type listener = { l_ph : Capsule_intf.process_handle; mutable l_enabled : int list }

let capsule ?(pins = [ 8; 9 ]) gpio =
  List.iter (fun p -> Mpu_hw.Gpio.set_direction gpio p Mpu_hw.Gpio.Input) pins;
  let last_levels = Array.make (List.length pins) false in
  let listeners : (int, listener) Hashtbl.t = Hashtbl.create 4 in
  let command (ph : Capsule_intf.process_handle) ~cmd ~arg1 ~arg2 =
    ignore arg2;
    if cmd = 0 then List.length pins
    else
      match List.nth_opt pins arg1 with
      | None -> Userland.failure
      | Some pin ->
        if cmd = 1 then if Mpu_hw.Gpio.read gpio pin then 1 else 0
        else if cmd = 2 then begin
          let l =
            match Hashtbl.find_opt listeners ph.Capsule_intf.ph_pid with
            | Some l -> l
            | None ->
              let l = { l_ph = ph; l_enabled = [] } in
              Hashtbl.replace listeners ph.Capsule_intf.ph_pid l;
              l
          in
          if not (List.mem arg1 l.l_enabled) then l.l_enabled <- arg1 :: l.l_enabled;
          Userland.success
        end
        else if cmd = 3 then begin
          (match Hashtbl.find_opt listeners ph.Capsule_intf.ph_pid with
          | Some l -> l.l_enabled <- List.filter (fun i -> i <> arg1) l.l_enabled
          | None -> ());
          Userland.success
        end
        else Userland.failure
  in
  let tick ~now =
    ignore now;
    List.iteri
      (fun i pin ->
        let level = Mpu_hw.Gpio.read gpio pin in
        if level <> last_levels.(i) then begin
          last_levels.(i) <- level;
          Hashtbl.iter
            (fun _ l ->
              if List.mem i l.l_enabled then
                l.l_ph.Capsule_intf.ph_schedule_upcall ~upcall_id:0
                  ~arg:((i * 2) + if level then 1 else 0))
            listeners
        end)
      pins
  in
  let snapshotter =
    {
      Capsule_intf.sn_name = "button";
      sn_capture =
        (fun () ->
          (* listeners hold process handles (valid across restore: procs
             restore in place) plus a mutable enabled list, so capture the
             table shape and each listener's list *)
          let levels = Array.copy last_levels in
          let subs =
            Hashtbl.fold (fun pid l acc -> (pid, l, l.l_enabled) :: acc) listeners []
          in
          fun () ->
            Array.blit levels 0 last_levels 0 (Array.length last_levels);
            Hashtbl.reset listeners;
            List.iter
              (fun (pid, l, enabled) ->
                l.l_enabled <- enabled;
                Hashtbl.replace listeners pid l)
              subs);
      sn_fingerprint =
        (fun () ->
          let h = Array.fold_left (fun h b -> Fp.bool h b) Fp.seed last_levels in
          let subs =
            Hashtbl.fold (fun pid l acc -> (pid, List.sort compare l.l_enabled) :: acc)
              listeners []
            |> List.sort compare
          in
          List.fold_left
            (fun h (pid, enabled) -> Fp.ints (Fp.int h pid) enabled)
            (Fp.int h (List.length subs))
            subs);
    }
  in
  { (Capsule_intf.stub ~driver_num ~name:"button") with
    Capsule_intf.cap_command = command;
    cap_tick = tick;
    cap_snapshot = Some snapshotter;
  }
