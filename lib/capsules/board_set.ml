(** The standard capsule set a board registers — plus the devices they sit
    on, returned so tests and examples can poke them (press buttons, read
    the UART transcript, count LED toggles). *)

type devices = {
  uart : Mpu_hw.Uart.t;  (** app console *)
  debug_uart : Mpu_hw.Uart.t;  (** process-console shell *)
  gpio : Mpu_hw.Gpio.t;
  reseed : int -> unit;
      (** re-seed the set's deterministic entropy (the RNG capsule's
          xorshift stream) in place — the board-level hook behind
          [Instance.reseed] *)
}

let standard ?rng_seed ?rng_stall ?ipc_nack () =
  let uart = Mpu_hw.Uart.create () in
  let debug_uart = Mpu_hw.Uart.create () in
  let gpio = Mpu_hw.Gpio.create 16 in
  let rng, reseed = Rng.capsule_reseed ?seed:rng_seed ?stall:rng_stall () in
  let capsules =
    [
      Virtual_alarm.make ();
      Console.capsule uart;
      Led.capsule gpio;
      Button.capsule gpio;
      rng;
      Ipc.capsule ?copy_nack:ipc_nack ();
      Process_console.capsule debug_uart;
    ]
  in
  (capsules, { uart; debug_uart; gpio; reseed })

(** Snapshot components for the devices behind {!standard}'s capsules — the
    board constructor only sees its core machine, so harnesses splice these
    into the board target with [Snapshot.add_components] (which keeps the
    kernel component last). *)
let components { uart; debug_uart; gpio; reseed = _ } =
  let comp name ~capture ~restore ~fingerprint obj =
    {
      Ticktock.Snapshot.co_name = name;
      co_capture =
        (fun () ->
          let s = capture obj in
          fun () -> restore obj s);
      co_fingerprint = (fun () -> fingerprint obj);
    }
  in
  [
    comp "uart" ~capture:Mpu_hw.Uart.capture_state ~restore:Mpu_hw.Uart.restore_state
      ~fingerprint:Mpu_hw.Uart.fingerprint uart;
    comp "debug-uart" ~capture:Mpu_hw.Uart.capture_state ~restore:Mpu_hw.Uart.restore_state
      ~fingerprint:Mpu_hw.Uart.fingerprint debug_uart;
    comp "gpio" ~capture:Mpu_hw.Gpio.capture_state ~restore:Mpu_hw.Gpio.restore_state
      ~fingerprint:Mpu_hw.Gpio.fingerprint gpio;
  ]
