(** The standard capsule set a board registers — plus the devices they sit
    on, returned so tests and examples can poke them (press buttons, read
    the UART transcript, count LED toggles). *)

type devices = {
  uart : Mpu_hw.Uart.t;  (** app console *)
  debug_uart : Mpu_hw.Uart.t;  (** process-console shell *)
  gpio : Mpu_hw.Gpio.t;
}

let standard ?rng_seed ?rng_stall ?ipc_nack () =
  let uart = Mpu_hw.Uart.create () in
  let debug_uart = Mpu_hw.Uart.create () in
  let gpio = Mpu_hw.Gpio.create 16 in
  let capsules =
    [
      Virtual_alarm.make ();
      Console.capsule uart;
      Led.capsule gpio;
      Button.capsule gpio;
      Rng.capsule ?seed:rng_seed ?stall:rng_stall ();
      Ipc.capsule ?copy_nack:ipc_nack ();
      Process_console.capsule debug_uart;
    ]
  in
  (capsules, { uart; debug_uart; gpio })
