(** The standard capsule set a board registers, plus the devices they sit
    on — returned so tests and examples can poke them (press buttons, read
    the UART transcript, count LED toggles). *)

type devices = {
  uart : Mpu_hw.Uart.t;  (** app console *)
  debug_uart : Mpu_hw.Uart.t;  (** process-console shell *)
  gpio : Mpu_hw.Gpio.t;
  reseed : int -> unit;
      (** re-seed the set's deterministic entropy (the RNG capsule's
          xorshift stream) in place — cheap per-fork reseeding for fleet
          cells forked from one pristine board image *)
}

val standard :
  ?rng_seed:int ->
  ?rng_stall:int ref ->
  ?ipc_nack:int ref ->
  unit ->
  Ticktock.Capsule_intf.t list * devices
(** [rng_stall] and [ipc_nack] are the capsules' fault-injection hooks
    (see {!Rng.capsule} and {!Ipc.capsule}); omitted, the set behaves
    exactly as before. *)

val components : devices -> Ticktock.Snapshot.component list
(** Snapshot components for the devices behind {!standard}'s capsules.
    Splice into a board target with [Snapshot.add_components] — it inserts
    before the kernel component, keeping the kernel last in restore order. *)
