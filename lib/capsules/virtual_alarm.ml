(** A virtualized alarm capsule — Tock's [MuxAlarm] pattern.

    One underlying time source (the kernel tick) is multiplexed into any
    number of per-process alarms. Each process can keep one outstanding
    alarm (like Tock's userspace alarm driver); the capsule keeps its
    bookkeeping in a grant-backed record and fires upcalls from its tick
    (bottom half), never from the command (top half) — the layering §2.1
    describes.

    Driver number 4 (the builtin kernel alarm keeps 0).

    Commands: 0 = driver check; 1 = set alarm in [arg1] ticks (returns the
    absolute deadline); 2 = read the current time; 3 = cancel. *)

open Ticktock

let driver_num = 4

type outstanding = {
  o_pid : int;
  o_deadline : int;
  o_upcall : Capsule_intf.process_handle;
}

type state = {
  mutable queue : outstanding list;  (** sorted by deadline *)
  mutable now : int;
  mutable fired : int;
}

let insert q o =
  let rec go = function
    | [] -> [ o ]
    | x :: rest when x.o_deadline <= o.o_deadline -> x :: go rest
    | rest -> o :: rest
  in
  go q

let capsule () =
  let st = { queue = []; now = 0; fired = 0 } in
  let command (ph : Capsule_intf.process_handle) ~cmd ~arg1 ~arg2 =
    ignore arg2;
    if cmd = 0 then Userland.success
    else if cmd = 1 then begin
      (* one outstanding alarm per process: a new set replaces the old *)
      let deadline = st.now + max arg1 1 in
      st.queue <-
        insert
          (List.filter (fun o -> o.o_pid <> ph.Capsule_intf.ph_pid) st.queue)
          { o_pid = ph.Capsule_intf.ph_pid; o_deadline = deadline; o_upcall = ph };
      deadline
    end
    else if cmd = 2 then st.now
    else if cmd = 3 then begin
      st.queue <- List.filter (fun o -> o.o_pid <> ph.Capsule_intf.ph_pid) st.queue;
      Userland.success
    end
    else Userland.failure
  in
  let tick ~now =
    st.now <- now;
    let due, later = List.partition (fun o -> o.o_deadline <= now) st.queue in
    st.queue <- later;
    List.iter
      (fun o ->
        st.fired <- st.fired + 1;
        o.o_upcall.Capsule_intf.ph_schedule_upcall ~upcall_id:0 ~arg:o.o_deadline)
      due
  in
  (* Snapshot: [outstanding] records are immutable and process handles
     stay valid across a restore (the kernel restores processes in place),
     so sharing the queue list by reference is a deep-enough capture. *)
  let snapshotter =
    {
      Capsule_intf.sn_name = "virtual-alarm";
      sn_capture =
        (fun () ->
          let queue = st.queue and now = st.now and fired = st.fired in
          fun () ->
            st.queue <- queue;
            st.now <- now;
            st.fired <- fired);
      sn_fingerprint =
        (fun () ->
          let h =
            List.fold_left
              (fun h o -> Fp.int (Fp.int h o.o_pid) o.o_deadline)
              (Fp.int Fp.seed (List.length st.queue))
              st.queue
          in
          Fp.int (Fp.int h st.now) st.fired);
    }
  in
  ( { (Capsule_intf.stub ~driver_num ~name:"virtual-alarm") with
      Capsule_intf.cap_command = command;
      cap_tick = tick;
      cap_snapshot = Some snapshotter;
    },
    st )

let make () = fst (capsule ())
let outstanding st = List.length st.queue
let fired st = st.fired
