(** Inter-process communication capsule, after Tock's [ipc] driver
    (driver {!driver_num}).

    Services register under their process name; clients discover a service
    by writing its NUL-terminated name into an allowed read-only buffer,
    then exchange notification upcalls and share their allowed read-write
    buffer with the peer. All cross-process reach goes through
    driver-scoped handles from the kernel services — the capsule can only
    touch what each process explicitly allowed to {e this} driver.

    Commands: 0 register (returns own pid); 1 discover (returns service
    pid); 2/3 notify service/client (peer upcall, arg = caller pid);
    4 read byte of peer's shared buffer ([arg2] = offset); 5 write byte
    ([arg2] = [offset << 8 | byte]). *)

val driver_num : int

val peer_died : Mach.Word32.t
(** The upcall argument a waiting client receives when its peer died
    mid-exchange (equals {!Ticktock.Userland.failure}). *)

val capsule : ?copy_nack:int ref -> unit -> Ticktock.Capsule_intf.t
(** When a process dies mid-exchange (a cmd-2 notify not yet answered by
    cmd 3), every peer still waiting on it is woken with an error upcall
    (id 3, arg {!Ticktock.Userland.failure}) instead of staying wedged in
    [yield]. [copy_nack] is a fault-injection hook: while positive, each
    shared-buffer copy (cmd 4/5) decrements it and fails — a transient bus
    NACK a retrying client masks. *)
