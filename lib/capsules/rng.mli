(** RNG capsule (driver {!driver_num}).

    Command [1, n] fills [n] bytes of the allowed read-write buffer from a
    deterministic xorshift32 stream (seeded per board for reproducible
    runs) and schedules the completion upcall with the count. *)

val driver_num : int

val capsule : ?seed:int -> ?stall:int ref -> unit -> Ticktock.Capsule_intf.t
(** [stall] is a fault-injection hook: while positive, each [get] command
    decrements it and fails — the entropy source has transiently run dry,
    and a retrying client masks the fault. *)

val capsule_reseed :
  ?seed:int -> ?stall:int ref -> unit -> Ticktock.Capsule_intf.t * (int -> unit)
(** Like {!capsule}, but also returns a reseed hook that re-points the
    xorshift stream in place (0 normalizes to 1, as at construction) —
    cheap per-fork reseeding for campaign cells forked from one pristine
    board image. *)
