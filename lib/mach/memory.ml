type fault = {
  fault_addr : Word32.t;
  fault_access : Perms.access;
  fault_reason : string;
}

exception Access_fault of fault

let page_bits = 12
let page_size = 1 lsl page_bits

type checker = {
  check : Word32.t -> Perms.access -> (unit, string) result;
  generation : unit -> int;
  privilege : unit -> int;
  granule_bits : unit -> int;
}

(* Direct-mapped MPU decision cache. Each entry remembers one *allow*
   decision for a (granule-block, privilege, access-kind) key together with
   the checker generation it was taken under; a register write bumps the
   generation and thereby invalidates every entry at once. Deny decisions
   are never cached: the slow path owns the fault message and the
   fault-status side effects (SCB latching). *)
let dc_bits = 10
let dc_size = 1 lsl dc_bits

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable checker : checker option;
  (* single-entry page cache: instruction fetch and stack traffic are
     highly local, so most accesses hit the page of the previous one *)
  mutable last_key : int;
  mutable last_page : Bytes.t;
  dc_key : int array;
  dc_gen : int array;
  mutable dc_hits : int;
  mutable dc_misses : int;
  (* icache support: pages that decoded instructions were fetched from.
     A write into any registered page bumps [code_gen], invalidating every
     cached decode at once, and drops the registrations (the next decode
     re-registers its pages). [last_wkey] memoizes the most recent
     known-not-code page so data-heavy write loops pay one compare. *)
  code_pages : (int, unit) Hashtbl.t;
  mutable code_gen : int;
  (* model-visible invalidation sequence: counts code-page invalidations
     and is what trace events carry. Unlike [code_gen] — which only ever
     moves forward, including across [restore] — this is part of the
     snapshot state, so forked reruns emit identical traces. *)
  mutable ic_seq : int;
  mutable last_wkey : int;
  (* copy-on-write snapshot support: [era] advances on every capture and
     restore; [owner] maps a page key to the era in which this [t] came to
     own its Bytes exclusively. A write to a page owned in an older era
     (i.e. one whose Bytes a snapshot may share) clones it first, so
     capture is O(pages touched) pointer copies and snapshots stay frozen.
     [last_wpriv] memoizes the most recent known-private page so the write
     fast path pays one integer compare. *)
  owner : (int, int) Hashtbl.t;
  mutable era : int;
  mutable last_wpriv : int;
  (* bumped whenever the checker is replaced, so permission stamps taken
     under one checker can never validate against another *)
  mutable checker_epoch : int;
  (* hoisted decision-cache context for the superblock engine: [hoist]
     snapshots the checker's generation/privilege/granule closures into
     plain ints once per trace entry, and [load32_fast]/[store32_fast]
     probe the decision cache against them without a closure call per
     access. Sound only while none of the three can change — i.e. inside
     one Mc trace (see mc.ml). [fp_on] is false whenever the aligned-word
     fast path does not apply (no checker, or sub-word granule). *)
  mutable fp_on : bool;
  mutable fp_gen : int;
  mutable fp_priv : int;
  mutable fp_gbits : int;
  (* observability sink: the access-check fast paths never consult it;
     only the rare invalidation events (checker swap, code-page write)
     emit, and only when a sink is attached *)
  mutable obs : Obs.Event.sink option;
}

let no_page = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 64;
    checker = None;
    last_key = -1;
    last_page = no_page;
    dc_key = Array.make dc_size (-1);
    dc_gen = Array.make dc_size (-1);
    dc_hits = 0;
    dc_misses = 0;
    code_pages = Hashtbl.create 16;
    code_gen = 0;
    ic_seq = 0;
    last_wkey = -1;
    owner = Hashtbl.create 64;
    era = 0;
    last_wpriv = -1;
    checker_epoch = 0;
    fp_on = false;
    fp_gen = -1;
    fp_priv = 0;
    fp_gbits = 0;
    obs = None;
  }

let set_obs t sink = t.obs <- sink

let flush_decision_cache t =
  Array.fill t.dc_key 0 dc_size (-1);
  Array.fill t.dc_gen 0 dc_size (-1)

let set_checker t checker =
  t.checker <- checker;
  t.checker_epoch <- t.checker_epoch + 1;
  flush_decision_cache t;
  match t.obs with
  | None -> ()
  | Some emit -> emit (Obs.Event.Buscache_flush { reason = "set_checker" })

let get_checker t = t.checker
let checker_epoch t = t.checker_epoch

(* --- icache generation plumbing --- *)

let code_generation t = t.code_gen

let note_code_page t addr =
  let key = addr lsr page_bits in
  if t.last_wkey = key then t.last_wkey <- -1;
  Hashtbl.replace t.code_pages key ()

let code_page_registered t addr = Hashtbl.mem t.code_pages (addr lsr page_bits)

(* Called on every raw write path. Cheap when no code has been decoded
   (one length read) and when writing repeatedly to the same data page
   (one compare); a write that lands in a code page invalidates. *)
let code_write_check t addr =
  if Hashtbl.length t.code_pages > 0 then begin
    let key = addr lsr page_bits in
    if key <> t.last_wkey then begin
      if Hashtbl.mem t.code_pages key then begin
        t.code_gen <- t.code_gen + 1;
        t.ic_seq <- t.ic_seq + 1;
        Hashtbl.reset t.code_pages;
        t.last_wkey <- -1;
        match t.obs with
        | None -> ()
        | Some emit -> emit (Obs.Event.Icache_invalidated { generation = t.ic_seq; addr })
      end
      else t.last_wkey <- key
    end
  end

let checker_enabled t = t.checker <> None

let checker_of_fn f =
  (* Wrap a bare checking function (tests, ad-hoc harnesses). Such a
     closure may be stateful, so it must never be cached: a generation
     that changes on every read guarantees no probe ever matches. *)
  let gen = ref 0 in
  {
    check = f;
    generation =
      (fun () ->
        incr gen;
        !gen);
    privilege = (fun () -> 0);
    granule_bits = (fun () -> 0);
  }

let set_checker_fn t f = set_checker t (Option.map checker_of_fn f)

let cache_stats t = (t.dc_hits, t.dc_misses)

let reset_cache_stats t =
  t.dc_hits <- 0;
  t.dc_misses <- 0

let page t addr =
  let key = addr lsr page_bits in
  if key = t.last_key then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages key with
      | Some p -> p
      | None ->
        let p = Bytes.make page_size '\000' in
        Hashtbl.replace t.pages key p;
        (* a freshly materialised page is exclusively ours *)
        Hashtbl.replace t.owner key t.era;
        p
    in
    t.last_key <- key;
    t.last_page <- p;
    p
  end

(* Page resolution for the write paths: like [page], but clones a page
   whose Bytes an outstanding snapshot may still reference (owned in an
   earlier era) before handing it out. *)
let wpage t addr =
  let key = addr lsr page_bits in
  if key <> t.last_wpriv then begin
    (match Hashtbl.find_opt t.pages key with
    | Some p -> (
      match Hashtbl.find_opt t.owner key with
      | Some e when e = t.era -> ()
      | Some _ | None ->
        let q = Bytes.copy p in
        Hashtbl.replace t.pages key q;
        Hashtbl.replace t.owner key t.era;
        if t.last_key = key then t.last_page <- q)
    | None -> () (* miss: [page] below materialises and owns it *));
    t.last_wpriv <- key
  end;
  page t addr

let read8 t addr =
  assert (Word32.is_valid addr);
  Char.code (Bytes.get (page t addr) (addr land (page_size - 1)))

let write8 t addr v =
  assert (Word32.is_valid addr);
  code_write_check t addr;
  Bytes.set (wpage t addr) (addr land (page_size - 1)) (Char.chr (v land 0xff))

let read32 t addr =
  assert (Word32.is_valid addr);
  if addr land 3 = 0 then
    (* aligned: one page lookup, one 32-bit read (never page-straddling) *)
    Int32.to_int (Bytes.get_int32_le (page t addr) (addr land (page_size - 1)))
    land 0xFFFF_FFFF
  else begin
    let b i = read8 t (Word32.add addr i) in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  end

let write32 t addr v =
  assert (Word32.is_valid addr);
  if addr land 3 = 0 then begin
    code_write_check t addr;
    Bytes.set_int32_le (wpage t addr) (addr land (page_size - 1)) (Int32.of_int v)
  end
  else begin
    let b i x = write8 t (Word32.add addr i) x in
    b 0 v;
    b 1 (v lsr 8);
    b 2 (v lsr 16);
    b 3 (v lsr 24)
  end

let blit_string t addr s =
  let len = String.length s in
  let rec go src addr =
    if src < len then begin
      code_write_check t addr;
      let p = wpage t addr in
      let off = addr land (page_size - 1) in
      let n = min (len - src) (page_size - off) in
      Bytes.blit_string s src p off n;
      go (src + n) (Word32.add addr n)
    end
  in
  go 0 addr

let read_bytes t addr n =
  let out = Bytes.create n in
  let rec go dst addr =
    if dst < n then begin
      let p = page t addr in
      let off = addr land (page_size - 1) in
      let k = min (n - dst) (page_size - off) in
      Bytes.blit p off out dst k;
      go (dst + k) (Word32.add addr k)
    end
  in
  go 0 addr;
  Bytes.unsafe_to_string out

(* --- access checking --- *)

let access_code = function Perms.Read -> 0 | Perms.Write -> 1 | Perms.Execute -> 2

(* The key carries the full identity of a decision: granule block,
   privilege level, access kind. The index spreads R/W/X of one block over
   distinct entries so an execute-heavy loop does not evict its data. *)
let dc_probe t c addr access =
  let block = addr lsr c.granule_bits () in
  let code = access_code access in
  let key = (block lsl 3) lor (c.privilege () lsl 2) lor code in
  let idx = ((block lsl 2) lor code) land (dc_size - 1) in
  if t.dc_key.(idx) = key && t.dc_gen.(idx) = c.generation () then begin
    t.dc_hits <- t.dc_hits + 1;
    true
  end
  else begin
    t.dc_misses <- t.dc_misses + 1;
    false
  end

let dc_insert t c addr access =
  let block = addr lsr c.granule_bits () in
  let code = access_code access in
  let key = (block lsl 3) lor (c.privilege () lsl 2) lor code in
  let idx = ((block lsl 2) lor code) land (dc_size - 1) in
  t.dc_key.(idx) <- key;
  t.dc_gen.(idx) <- c.generation ()

let check t addr access =
  match t.checker with
  | None -> Ok ()
  | Some c ->
    if dc_probe t c addr access then Ok ()
    else begin
      match c.check addr access with
      | Ok () as ok ->
        dc_insert t c addr access;
        ok
      | Error _ as e -> e
    end

let checked t addr access k =
  match check t addr access with
  | Ok () -> k ()
  | Error fault_reason ->
    raise (Access_fault { fault_addr = addr; fault_access = access; fault_reason })

let check_byte t c addr access =
  if not (dc_probe t c addr access) then begin
    match c.check addr access with
    | Ok () -> dc_insert t c addr access
    | Error fault_reason ->
      raise (Access_fault { fault_addr = addr; fault_access = access; fault_reason })
  end

let check_word t addr access =
  (* A 4-byte access faults if any covered byte is denied, matching the
     byte-granular view the MPU models expose. An aligned word lies inside
     one decision granule whenever the granule is at least a word, so a
     single cached allow covers all four bytes; the miss path still walks
     byte by byte so the faulting byte address is exact. *)
  match t.checker with
  | None -> ()
  | Some c ->
    if addr land 3 = 0 && c.granule_bits () >= 2 then begin
      if not (dc_probe t c addr access) then begin
        for i = 0 to 3 do
          match c.check (Word32.add addr i) access with
          | Ok () -> ()
          | Error fault_reason ->
            raise
              (Access_fault
                 { fault_addr = Word32.add addr i; fault_access = access; fault_reason })
        done;
        dc_insert t c addr access
      end
    end
    else
      for i = 0 to 3 do
        check_byte t c (Word32.add addr i) access
      done

let load8 t addr = checked t addr Perms.Read (fun () -> read8 t addr)
let store8 t addr v = checked t addr Perms.Write (fun () -> write8 t addr v)

let load32 t addr =
  check_word t addr Perms.Read;
  read32 t addr

let store32 t addr v =
  check_word t addr Perms.Write;
  write32 t addr v

let fetch32 t addr =
  check_word t addr Perms.Execute;
  read32 t addr

let check_fetch16 t addr =
  match t.checker with
  | None -> ()
  | Some c ->
    if addr land 1 = 0 && c.granule_bits () >= 1 then begin
      if not (dc_probe t c addr Perms.Execute) then begin
        for i = 0 to 1 do
          match c.check (Word32.add addr i) Perms.Execute with
          | Ok () -> ()
          | Error fault_reason ->
            raise
              (Access_fault
                 {
                   fault_addr = Word32.add addr i;
                   fault_access = Perms.Execute;
                   fault_reason;
                 })
        done;
        dc_insert t c addr Perms.Execute
      end
    end
    else begin
      check_byte t c addr Perms.Execute;
      check_byte t c (Word32.add addr 1) Perms.Execute
    end

(* --- hoisted fast path (superblock traces) ---

   [hoist] resolves the checker's generation/privilege/granule closures to
   ints; the fast accessors then replicate [check_word]'s aligned-word
   decision-cache probe with pure integer arithmetic. A probe hit counts a
   [dc_hits] exactly like [dc_probe]; any other case falls into the full
   checked access, which owns the miss counting, the cache fill, the exact
   fault address and the unaligned/no-checker cases — so the counters and
   the observable behaviour are identical to the unhoisted path. *)

let hoist t =
  match t.checker with
  | None -> t.fp_on <- false
  | Some c ->
    let g = c.granule_bits () in
    if g >= 2 then begin
      t.fp_on <- true;
      t.fp_gbits <- g;
      t.fp_gen <- c.generation ();
      t.fp_priv <- c.privilege ()
    end
    else t.fp_on <- false

let load32_fast t addr =
  if t.fp_on && addr land 3 = 0 then begin
    let block = addr lsr t.fp_gbits in
    let key = (block lsl 3) lor (t.fp_priv lsl 2) (* access_code Read = 0 *) in
    let idx = (block lsl 2) land (dc_size - 1) in
    if Array.unsafe_get t.dc_key idx = key && Array.unsafe_get t.dc_gen idx = t.fp_gen
    then begin
      t.dc_hits <- t.dc_hits + 1;
      read32 t addr
    end
    else load32 t addr
  end
  else load32 t addr

let store32_fast t addr v =
  if t.fp_on && addr land 3 = 0 then begin
    let block = addr lsr t.fp_gbits in
    let key = (block lsl 3) lor (t.fp_priv lsl 2) lor 1 (* access_code Write *) in
    let idx = ((block lsl 2) lor 1) land (dc_size - 1) in
    if Array.unsafe_get t.dc_key idx = key && Array.unsafe_get t.dc_gen idx = t.fp_gen
    then begin
      t.dc_hits <- t.dc_hits + 1;
      write32 t addr v
    end
    else store32 t addr v
  end
  else store32 t addr v

let fetch16 t addr =
  check_fetch16 t addr;
  let off = addr land (page_size - 1) in
  if off < page_size - 1 then Bytes.get_uint16_le (page t addr) off
  else read8 t addr lor (read8 t (Word32.add addr 1) lsl 8)

let touched_pages t = Hashtbl.length t.pages

(* --- snapshots --- *)

type snapshot = { snap_pages : (int, Bytes.t) Hashtbl.t; snap_ic_seq : int }

let capture t =
  (* everything currently materialised becomes shared with the snapshot;
     the next write to any of it clones first *)
  t.era <- t.era + 1;
  t.last_wpriv <- -1;
  { snap_pages = Hashtbl.copy t.pages; snap_ic_seq = t.ic_seq }

let restore t s =
  Hashtbl.reset t.pages;
  Hashtbl.iter (fun k p -> Hashtbl.replace t.pages k p) s.snap_pages;
  t.ic_seq <- s.snap_ic_seq;
  Hashtbl.reset t.owner;
  t.era <- t.era + 1;
  t.last_wpriv <- -1;
  t.last_key <- -1;
  t.last_page <- no_page;
  (* Restore hazard: the bytes under every cached decode and access
     decision may just have changed. The code generation only ever moves
     forward — rewinding it to the captured value could let blocks decoded
     *after* the capture validate against the restored bytes. *)
  t.code_gen <- t.code_gen + 1;
  Hashtbl.reset t.code_pages;
  t.last_wkey <- -1;
  flush_decision_cache t;
  match t.obs with
  | None -> ()
  | Some emit -> emit (Obs.Event.Buscache_flush { reason = "restore" })

let zero_page = Bytes.make page_size '\000'

(* --- snapshot (de)serialization, for the on-disk board-snapshot format.
   All-zero pages are elided: an absent page reads as zeros, so the
   round-trip through [(key, bytes)] pairs is exact. *)

let snapshot_pages s =
  Hashtbl.fold
    (fun k p acc -> if Bytes.equal p zero_page then acc else (k, Bytes.to_string p) :: acc)
    s.snap_pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot_of_pages pages =
  let snap_pages = Hashtbl.create (max 16 (List.length pages)) in
  List.iter
    (fun (k, data) ->
      if String.length data <> page_size then
        invalid_arg "Memory.snapshot_of_pages: bad page size";
      Hashtbl.replace snap_pages k (Bytes.of_string data))
    pages;
  (* on-disk snapshots are pristine (nothing executed), so no code page was
     ever registered, let alone invalidated *)
  { snap_pages; snap_ic_seq = 0 }

let fingerprint t =
  (* Absent pages read as zeros, so a page materialised by a read miss must
     hash like no page at all: skip all-zero pages. *)
  let keys =
    Hashtbl.fold (fun k p acc -> if Bytes.equal p zero_page then acc else k :: acc) t.pages []
  in
  List.fold_left
    (fun h k -> Fp.bytes (Fp.int h k) (Hashtbl.find t.pages k))
    (Fp.int Fp.seed (List.length (List.sort compare keys)))
    (List.sort compare keys)
