(** FNV-1a 64-bit state fingerprints.

    Every snapshotable component folds its observable state into one of
    these; the snapshot layer combines them into a whole-board fingerprint
    the determinism tests compare. FNV-1a is not cryptographic — it only
    needs to make "same fingerprint" a trustworthy proxy for "byte-identical
    state" across a restore, and to be cheap enough to run after every
    round of a property suite. *)

type t = int64

let seed = 0xcbf29ce484222325L
let prime = 0x100000001b3L
let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

(* Full 63-bit OCaml ints are fed as 8 little-endian bytes so negative
   sentinels (-1 keys) and large words hash distinctly. *)
let int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h ((v asr (i * 8)) land 0xff)
  done;
  !h

let int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff)
  done;
  !h

let bool h v = byte h (if v then 1 else 0)

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let bytes h b =
  let h = ref (int h (Bytes.length b)) in
  Bytes.iter (fun c -> h := byte !h (Char.code c)) b;
  !h

let ints h l = List.fold_left int (int h (List.length l)) l
let to_hex h = Printf.sprintf "%016Lx" h
