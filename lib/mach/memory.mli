(** Sparse byte-addressable physical memory.

    Models the microcontroller's flat 32-bit physical address space (no MMU,
    no translation — exactly the setting that forces Tock onto MPUs). Memory
    is allocated lazily in pages so a 4 GiB space costs only what is touched.

    An optional {e access checker} is consulted on every load/store/fetch;
    the MPU hardware models install themselves here, so every memory access
    made by emulated user code is subject to the live MPU configuration, the
    same way the hardware intercepts bus accesses.

    Two host-side fast paths keep the modeled bus close to host speed
    without changing observable behaviour:

    - aligned word accesses do a single page lookup (with a one-entry
      last-page cache) and a single 32-bit byte-string read/write;
    - access decisions are cached in a direct-mapped {e micro-TLB} keyed by
      (granule block, privilege, access kind) and guarded by the checker's
      generation counter, which MPU models bump on every configuration
      register write. Only {e allow} decisions are cached, so denials always
      reach the full checker (fault messages, fault-status latching). *)

type t

type fault = {
  fault_addr : Word32.t;
  fault_access : Perms.access;
  fault_reason : string;
}

exception Access_fault of fault
(** Raised by checked accesses that the installed checker denies — the model
    of the MemManage / PMP access fault exception. *)

type checker = {
  check : Word32.t -> Perms.access -> (unit, string) result;
      (** The authoritative decision function (the full MPU/PMP walk). *)
  generation : unit -> int;
      (** Current configuration generation. Any change invalidates every
          cached decision; MPU models bump it on RBAR/RASR/RLAR/CTRL/pmpcfg
          writes. *)
  privilege : unit -> int;
      (** Current privilege level as a small integer (0/1). Part of the
          cache key, so a privilege transition (handler entry/exit,
          CONTROL writes) can never reuse a decision taken at the other
          level. *)
  granule_bits : unit -> int;
      (** log2 of the finest granularity (bytes) at which the {e active}
          configuration can change a decision — at least 5 for
          ARMv7-M/ARMv8-M (32-byte regions/subregions/granules) and 2 for
          PMP (NA4), but coarser when the configured region boundaries are
          more aligned than the architectural minimum. A cached decision
          for one byte of an aligned granule block is valid for the whole
          block. A granule change always comes with a generation bump, so
          entries keyed under the old granule can never false-hit. *)
}

val create : unit -> t

val set_checker : t -> checker option -> unit
(** Install or remove the access checker ([None] = all access allowed, i.e.
    MPU disabled / privileged execution). Installed after creation so the
    checker closure may capture the CPU whose privilege state it consults.
    Installing a checker flushes the decision cache. *)

val checker_of_fn : (Word32.t -> Perms.access -> (unit, string) result) -> checker
(** Wrap a bare checking function as an {e uncacheable} checker (its
    generation changes on every read, so no decision is ever reused). For
    tests and ad-hoc harnesses whose closures may be stateful. *)

val set_checker_fn :
  t -> (Word32.t -> Perms.access -> (unit, string) result) option -> unit
(** [set_checker] ∘ [checker_of_fn]: the legacy plain-function interface. *)

val checker_enabled : t -> bool

val set_obs : t -> Obs.Event.sink option -> unit
(** Attach (or detach) an observability sink. The bus emits only rare
    invalidation events — {!set_checker} (decision-cache flush) and a write
    landing in a registered code page (icache invalidation). The per-access
    fast paths never consult the sink, and with [None] attached the hook
    sites allocate nothing. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the access-decision cache since the last
    {!reset_cache_stats}. *)

val reset_cache_stats : t -> unit

(** {1 Raw (unchecked) accesses} — used by the kernel model and by DMA, which
    bypass the MPU on real ARMv7-M hardware. *)

val read8 : t -> Word32.t -> int
val write8 : t -> Word32.t -> int -> unit
val read32 : t -> Word32.t -> Word32.t
(** Little-endian, like ARMv7-M and RV32 in Tock's configurations. *)

val write32 : t -> Word32.t -> Word32.t -> unit
val blit_string : t -> Word32.t -> string -> unit
val read_bytes : t -> Word32.t -> int -> string

(** {1 Checked accesses} — used by emulated unprivileged code. *)

val load8 : t -> Word32.t -> int
val store8 : t -> Word32.t -> int -> unit
val load32 : t -> Word32.t -> Word32.t
val store32 : t -> Word32.t -> Word32.t -> unit
val fetch32 : t -> Word32.t -> Word32.t
(** Instruction fetch: checked with {!Perms.Execute}. *)

val fetch16 : t -> Word32.t -> int
(** Halfword instruction fetch (Thumb), checked with {!Perms.Execute} on
    both covered bytes. *)

(** {1 Hoisted access fast path}

    The superblock engine ({!Fluxarm.Mc}) executes chained blocks whose
    loads and stores would otherwise pay three checker closure calls
    (generation, privilege, granule) per decision-cache probe. {!hoist}
    snapshots those into plain ints; {!load32_fast}/{!store32_fast} then
    probe the cache with integer compares only. Behaviour — including the
    hit/miss counters, cache fills, fault addresses and unaligned
    handling — is identical to {!load32}/{!store32}: anything but an
    aligned-word probe hit falls into the full checked access. Sound only
    while generation, privilege and granule cannot change, which the
    engine guarantees by re-hoisting at every trace entry (none of the
    three can change inside a trace: MPU registers are not bus-mapped,
    and a privilege commit point terminates the trace). *)

val hoist : t -> unit
val load32_fast : t -> Word32.t -> Word32.t
val store32_fast : t -> Word32.t -> Word32.t -> unit

val check_fetch16 : t -> Word32.t -> unit
(** The checking half of {!fetch16} without the data read: raises
    {!Access_fault} exactly when (and how) a halfword fetch at this address
    would. Lets the decoded-instruction cache reproduce fetch fault
    behaviour without touching the bytes. *)

(** {1 Decoded-code ({e icache}) invalidation support}

    The machine-code engine caches decoded instructions; those caches are
    only sound while the underlying bytes are unchanged. [Memory] tracks
    which pages hold decoded code and bumps a {e code generation} counter
    when any raw or checked write lands in one — loader placement, process
    RAM zeroing and self-modifying stores all funnel through the same write
    paths, so every way of changing code invalidates. *)

val code_generation : t -> int
(** Current code generation. Any cached decode keyed under an older
    generation is stale. *)

val note_code_page : t -> Word32.t -> unit
(** Register the page containing [addr] as holding decoded code; called by
    the decoder when it caches an instruction fetched from there. *)

val code_page_registered : t -> Word32.t -> bool
(** Whether [addr]'s page is currently registered as code (for tests). *)

val get_checker : t -> checker option
(** The installed checker, if any — the block cache consults its
    generation/privilege/granularity to validate permission stamps. *)

val checker_epoch : t -> int
(** Bumped every {!set_checker}; distinguishes decisions taken under
    different checker instances whose generation counters may collide. *)

val check : t -> Word32.t -> Perms.access -> (unit, string) result
(** Ask the checker without performing an access. [Ok] when no checker is
    installed. Consults (and fills) the decision cache. *)

val touched_pages : t -> int
(** Number of 4 KiB pages materialised so far (for tests and footprint
    reporting). *)

(** {1 Snapshots}

    Copy-on-write page snapshots: {!capture} copies the page {e table}
    (pointer copies, O(pages touched)) and marks every page shared; a later
    write clones its page first, so the snapshot stays frozen while the
    live memory keeps near-native write speed. {!restore} points the live
    table back at the snapshot's pages (sharing them again — a snapshot can
    be restored any number of times) and invalidates every derived cache:
    the access-decision cache is flushed and the code generation is bumped
    {e forward} so no decoded block or cached MPU decision taken before (or
    after) the capture can survive the transition. *)

type snapshot

val capture : t -> snapshot
val restore : t -> snapshot -> unit

val snapshot_pages : snapshot -> (int * string) list
(** The snapshot's materialised pages as [(page key, page bytes)] pairs in
    key order, all-zero pages elided — the portable form used by the
    on-disk board-snapshot format. *)

val snapshot_of_pages : (int * string) list -> snapshot
(** Rebuild a snapshot from {!snapshot_pages} output. Raises
    [Invalid_argument] on a malformed page. *)

val fingerprint : t -> int64
(** FNV-1a over (key, bytes) of all materialised pages in key order,
    skipping all-zero pages — so a page materialised by a read miss hashes
    identically to an untouched one. Host-side cache state (decision cache,
    memos, generations) is excluded: the fingerprint covers exactly the
    bytes an emulated program could observe. *)
