(** Deterministic cycle accounting.

    The paper instruments Tock's and TickTock's process abstractions with
    per-method CPU-cycle counters on an NRF52840 (Figure 11). Our substitute
    is a global deterministic counter that the kernel models charge with a
    documented cost per primitive operation (see DESIGN.md, "Cycle-cost
    model"). Relative differences between the two kernels then arise from
    code shape — loops vs. bit-math, redundant recomputation — rather than
    hand-picked constants. *)

type counter

val global : counter
(** The machine-wide counter shared by CPU emulator, MPU models and kernel.
    Domain-local: each domain charges its own instance, so parallel
    harnesses (e.g. the fuzz campaign workers) observe the same cycle
    deltas a sequential run would. *)

val fresh : unit -> counter

val tick : ?n:int -> counter -> unit
(** Charge [n] cycles (default 1). *)

val charge : counter -> int -> unit
(** [charge c n] = [tick ~n c] without the optional-argument boxing — for
    per-instruction hot paths (the CPU methods). *)

type handle = { mutable count : int }
(** A counter resolved to its backing cell. For {!global} the resolution
    happens in the calling domain, so a handle taken in one domain and
    charged from another would charge the taker's counter — take handles
    in the domain that uses them (the CPU emulator takes one per
    {!Fluxarm.Cpu.create}, which parallel harnesses call inside each
    worker domain).

    The cell is exposed so the superblock engine's compiled micro-ops can
    charge with one inlined field mutation instead of a cross-module call
    per emulated instruction. Mutate only through [count <- count + n];
    everything else goes through the {!counter} API. *)

val handle : counter -> handle
val charge_handle : handle -> int -> unit
(** [charge] minus the per-call domain-local lookup (~4ns each, once per
    emulated instruction). *)

val read : counter -> int
val reset : counter -> unit

val set : counter -> int -> unit
(** Overwrite the count — the snapshot layer restores the captured value so
    a restored board observes exactly the deltas of the original run. *)

val measure : counter -> (unit -> 'a) -> 'a * int
(** [measure c f] runs [f] and returns its result along with the cycles
    charged to [c] during the call. *)

(** {1 Cost constants} (documented in DESIGN.md) *)

(** [alu]: ALU op / register move (1). *)
val alu : int

(** [mem]: memory word access (2). *)
val mem : int

(** [mpu_reg_write]: MPU/PMP register write (3). *)
val mpu_reg_write : int

(** [branch]: taken branch / loop back-edge (2). *)
val branch : int

(** [exception_entry]: exception entry or return (20). *)
val exception_entry : int

(** [div]: hardware divide (6). *)
val div : int
