(** Power-of-two and alignment arithmetic.

    OCaml port of Tock's [kernel/src/utilities/math.rs] plus the alignment
    facts the paper proves as trusted lemmas in Lean (§5). The Cortex-M MPU
    driver leans on these for its size/alignment dance; the [verify] library
    re-proves the lemma statements by bounded exhaustion. *)

val is_pow2 : int -> bool
(** The paper's classic bithack: [v > 0 && v land (v-1) = 0]. *)

val log2 : int -> int
(** Floor of base-2 logarithm. Requires a positive argument. *)

val closest_power_of_two : int -> int
(** Smallest power of two greater than or equal to the argument (Tock's
    [closest_power_of_two]). Saturates at 2{^31} for inputs above it, like
    the upstream u32 implementation. Requires a positive argument. *)

val closest_power_of_two_checked : int -> int option
(** As {!closest_power_of_two} but [None] instead of saturating when the
    result would exceed 2{^31}. *)

val align_up : int -> align:int -> int
(** [align_up x ~align] rounds [x] up to the next multiple of [align].
    [align] must be a power of two. *)

val align_down : int -> align:int -> int
(** Round down to the previous multiple of a power-of-two alignment. *)

val is_aligned : int -> align:int -> bool

val next_aligned_from : int -> align:int -> int
(** The "move region up until it aligns" step from Figure 4a, line 23-25:
    smallest address [>= x] that is a multiple of [align]. Equal to
    {!align_up}; kept as a separate name to mirror the upstream code. *)

val trailing_zero_bits : int -> int
(** Number of trailing zero bits, i.e. the alignment of an address as a
    power-of-two exponent; 32 for 0 (a fully aligned 32-bit value). Used to
    derive the finest granularity at which an MPU/PMP configuration can
    change an access decision. *)
