type handle = { mutable count : int }
type cell = handle

(* The machine-wide counter is domain-local: every domain sees its own
   instance. Parallel harnesses (the fuzz campaign workers) each charge
   their own counter, so the cycle deltas a kernel observes inside one
   domain are exactly what a sequential run would see — a shared counter
   would let one worker's ticks expire another worker's SysTick quantum. *)
type counter = Local of cell | Domain_local of cell Domain.DLS.key

let global = Domain_local (Domain.DLS.new_key (fun () -> { count = 0 }))
let fresh () = Local { count = 0 }
let cell = function Local c -> c | Domain_local k -> Domain.DLS.get k

let charge t n =
  let c = cell t in
  c.count <- c.count + n

let tick ?(n = 1) t = charge t n

let handle t = cell t
let charge_handle (c : handle) n = c.count <- c.count + n

let read t = (cell t).count
let reset t = (cell t).count <- 0
let set t n = (cell t).count <- n

let measure t f =
  let c = cell t in
  let before = c.count in
  let result = f () in
  (result, c.count - before)

let alu = 1
let mem = 2
let mpu_reg_write = 3
let branch = 2
let exception_entry = 20
let div = 6
