(** FNV-1a 64-bit state fingerprints (see [fp.ml] for the contract). *)

type t = int64

val seed : t
(** The FNV offset basis — start every fold here. *)

val byte : t -> int -> t
val int : t -> int -> t
val int64 : t -> int64 -> t
val bool : t -> bool -> t
val string : t -> string -> t
val bytes : t -> Bytes.t -> t
val ints : t -> int list -> t
(** Length-prefixed fold of a word list (MPU register files). *)

val to_hex : t -> string
