let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  assert (v > 0);
  let rec loop acc v = if v <= 1 then acc else loop (acc + 1) (v lsr 1) in
  loop 0 v

let closest_power_of_two x =
  assert (x > 0);
  if x > 1 lsl 31 then 1 lsl 31
  else
    let rec loop p = if p >= x then p else loop (p lsl 1) in
    loop 1

let closest_power_of_two_checked x =
  assert (x > 0);
  if x > 1 lsl 31 then None else Some (closest_power_of_two x)

let align_up x ~align =
  assert (is_pow2 align);
  (x + align - 1) land lnot (align - 1)

let align_down x ~align =
  assert (is_pow2 align);
  x land lnot (align - 1)

let is_aligned x ~align =
  assert (is_pow2 align);
  x land (align - 1) = 0

let next_aligned_from x ~align = align_up x ~align

let trailing_zero_bits v =
  if v = 0 then 32
  else begin
    let rec loop acc v = if v land 1 = 1 then acc else loop (acc + 1) (v lsr 1) in
    loop 0 v
  end
