#!/bin/sh
# Minimal CI: build, run the full test suite, then smoke-test the bus
# fast path — the decision cache must actually hit and actually speed the
# checked bus up, and the deterministic experiments must not move.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force

# Bus smoke: a short run (BUS_ITERS keeps CI fast) that still exercises
# unchecked/cached/uncached on all three architectures and writes
# BENCH_bus.json; fail if the cache is cold or the speedup is gone.
BUS_ITERS=${BUS_ITERS:-100000} dune exec bench/main.exe -- bus
python3 - <<'EOF'
import json
with open("BENCH_bus.json") as f:
    data = json.load(f)
for row in data["archs"]:
    assert row["hit_rate"] > 0.9, f"{row['arch']}: decision cache cold ({row['hit_rate']})"
    assert row["speedup"] > 2.0, f"{row['arch']}: fast path regressed ({row['speedup']}x)"
print("bus smoke ok:", ", ".join(f"{r['arch']} {r['speedup']}x @ {r['hit_rate']:.0%}" for r in data["archs"]))
EOF

# The fast path must be invisible to the modeled experiments: fig11 and
# difftest are deterministic in model cycles, so two runs must agree and
# any host-side caching change shows up here as a diff.
dune exec bench/main.exe -- fig11 difftest > /tmp/ci_bus_a.txt
dune exec bench/main.exe -- fig11 difftest > /tmp/ci_bus_b.txt
diff /tmp/ci_bus_a.txt /tmp/ci_bus_b.txt
echo "ci ok"
