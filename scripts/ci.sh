#!/bin/sh
# Minimal CI: build, run the full test suite, then smoke-test the bus
# fast path — the decision cache must actually hit and actually speed the
# checked bus up, and the deterministic experiments must not move.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest --force

# Bus smoke: a short run (BUS_ITERS keeps CI fast) that still exercises
# unchecked/cached/uncached on all three architectures and writes
# BENCH_bus.json; fail if the cache is cold or the speedup is gone.
BUS_ITERS=${BUS_ITERS:-100000} dune exec bench/main.exe -- bus
python3 - <<'EOF'
import json
with open("BENCH_bus.json") as f:
    data = json.load(f)
for row in data["archs"]:
    assert row["hit_rate"] > 0.9, f"{row['arch']}: decision cache cold ({row['hit_rate']})"
    assert row["speedup"] > 2.0, f"{row['arch']}: fast path regressed ({row['speedup']}x)"
print("bus smoke ok:", ", ".join(f"{r['arch']} {r['speedup']}x @ {r['hit_rate']:.0%}" for r in data["archs"]))
EOF

# Icache smoke: the decode/block cache must actually hit, the warm
# engine must actually beat the cold (uncached) one, and the superblock
# (trace-linked) engine must beat the per-block engine by >= 2x on every
# architecture (the A/B run measures both warm engines back to back).
ICACHE_ITERS=${ICACHE_ITERS:-50000} dune exec bench/main.exe -- icache
python3 - <<'EOF'
import json
with open("BENCH_icache.json") as f:
    data = json.load(f)
assert data["superblock"] == "both", "icache smoke must run the A/B mode"
for row in data["archs"]:
    assert row["hit_rate"] >= 0.95, f"{row['arch']}: block cache cold ({row['hit_rate']})"
    assert row["speedup"] >= 3.0, f"{row['arch']}: block dispatch regressed ({row['speedup']}x)"
    assert row["link_rate"] >= 0.95, f"{row['arch']}: trace links cold ({row['link_rate']})"
    assert row["sb_gain"] >= 2.0, f"{row['arch']}: superblock engine regressed ({row['sb_gain']}x over per-block)"
print("icache smoke ok:", ", ".join(f"{r['arch']} {r['speedup']}x, sb {r['sb_gain']}x @ {r['link_rate']:.0%}" for r in data["archs"]))
EOF

# Obs smoke: tracing enabled may cost at most a few percent of wall time
# over the suite workload, and the disabled hooks must stay in the noise.
# (The experiment interleaves the modes and takes minima, but wall time on
# a loaded CI host still wobbles — the thresholds leave noise margin over
# the <5% / ~0% targets EXPERIMENTS.md documents.)
OBS_ITERS=${OBS_ITERS:-50} dune exec bench/main.exe -- obs
python3 - <<'EOF'
import json
with open("BENCH_obs.json") as f:
    data = json.load(f)
assert data["enabled_overhead_pct"] < 7.5, f"tracing overhead regressed ({data['enabled_overhead_pct']}%)"
assert data["disabled_overhead_pct"] < 5.0, f"disabled hooks not free ({data['disabled_overhead_pct']}%)"
assert data["events_per_suite_run"] > 500, "traced suite run recorded suspiciously few events"
print("obs smoke ok: enabled %+.2f%%, disabled %+.2f%%, %d events/run"
      % (data["enabled_overhead_pct"], data["disabled_overhead_pct"], data["events_per_suite_run"]))
EOF

# Chaos smoke: a one-board campaign with a fixed seed must classify every
# fired fault, catch every landed MPU corruption, and report no silent
# cross-process corruption.
dune exec bin/ticktock_cli.exe -- chaos -k ticktock-arm -n 2 -f 30 -o /tmp/ci_chaos_a.txt
python3 - <<'EOF'
import re
text = open("/tmp/ci_chaos_a.txt").read()
m = re.search(r"faults fired (\d+) \(effective (\d+)\)", text)
fired = int(m.group(1))
classes = re.search(r"masked (\d+)  healed (\d+)  contained (\d+)", text)
total = sum(int(g) for g in classes.groups())
assert fired >= 40, f"campaign too small ({fired} faults fired)"
assert total == fired, f"unclassified faults: {fired} fired, {total} classified"
scrub = re.search(r"scrub detections (\d+) of (\d+) corruptions", text)
assert scrub.group(1) == scrub.group(2), f"scrubber missed corruptions: {scrub.group(0)}"
assert "silent cross-process corruption: none" in text, "silent corruption reported"
assert "campaign: ok" in text, "campaign failed"
print(f"chaos smoke ok: {fired} faults, all classified, scrub {scrub.group(1)}/{scrub.group(2)}")
EOF

# The campaign is a deterministic function of (board, seed): a second run
# — and a single-worker run — must reproduce the report byte-for-byte.
dune exec bin/ticktock_cli.exe -- chaos -k ticktock-arm -n 2 -f 30 -o /tmp/ci_chaos_b.txt
TICKTOCK_JOBS=1 dune exec bin/ticktock_cli.exe -- chaos -k ticktock-arm -n 2 -f 30 -o /tmp/ci_chaos_c.txt
diff /tmp/ci_chaos_a.txt /tmp/ci_chaos_b.txt
diff /tmp/ci_chaos_a.txt /tmp/ci_chaos_c.txt

# The fast paths (bus and icache) must be invisible to the modeled
# experiments: fig11, difftest, latency and fuzz are deterministic in
# model cycles, so two runs must agree and any host-side caching change
# shows up here as a diff. Different fuzz job counts must agree too.
# The bench binary now links the chaos library with no engine attached —
# the idle chaos/scrubber/watchdog hooks must be invisible here as well
# (test_chaos asserts the same inertness at the suite level).
dune exec bench/main.exe -- fig11 difftest latency fuzz > /tmp/ci_det_a.txt
TICKTOCK_JOBS=1 dune exec bench/main.exe -- fig11 difftest latency fuzz > /tmp/ci_det_b.txt
diff /tmp/ci_det_a.txt /tmp/ci_det_b.txt

# Observation must be invisible too: the same experiments byte-identical
# with tracing absent (default), enabled, and attached-but-disabled.
# Sinks never charge model cycles and recorder timestamps are kernel
# ticks, so any perturbation — an extra cycle, a reordered decision —
# shows up here as a diff.
TICKTOCK_OBS=1 dune exec bench/main.exe -- fig11 difftest latency fuzz > /tmp/ci_det_obs_on.txt
TICKTOCK_OBS=disabled dune exec bench/main.exe -- fig11 difftest latency fuzz > /tmp/ci_det_obs_dis.txt
diff /tmp/ci_det_a.txt /tmp/ci_det_obs_on.txt
diff /tmp/ci_det_a.txt /tmp/ci_det_obs_dis.txt

# Trace linking must be invisible the same way: the superblock engine
# (default on) and the per-block engine must produce byte-identical
# modeled output — links are host-side cache state, never semantics.
TICKTOCK_SUPERBLOCK=off dune exec bench/main.exe -- fig11 difftest latency fuzz > /tmp/ci_det_sb_off.txt
diff /tmp/ci_det_a.txt /tmp/ci_det_sb_off.txt
TICKTOCK_SUPERBLOCK=off dune exec bin/ticktock_cli.exe -- chaos -k ticktock-arm -n 2 -f 30 -o /tmp/ci_chaos_sb_off.txt
diff /tmp/ci_chaos_a.txt /tmp/ci_chaos_sb_off.txt

# Snapshot smoke: capture a pristine post-boot image, inspect the header,
# restore it onto a fresh board of the same configuration, and make sure a
# mismatched board is refused.
dune exec bin/ticktock_cli.exe -- snapshot -k ticktock-arm -o /tmp/ci_arm.snap
dune exec bin/ticktock_cli.exe -- snapshot --info /tmp/ci_arm.snap
dune exec bin/ticktock_cli.exe -- snapshot -k ticktock-arm --check /tmp/ci_arm.snap
if dune exec bin/ticktock_cli.exe -- snapshot -k ticktock-e310 --check /tmp/ci_arm.snap 2>/dev/null; then
  echo "snapshot: mismatched board was NOT refused"
  exit 1
fi

# Fork equivalence: every harness must be byte-identical between booting a
# fresh board per round and forking rounds from the post-boot snapshot
# (directly, or loaded back from the file) — the admissibility condition
# for fleet campaigns running thousands of rounds off one boot.
dune exec bin/ticktock_cli.exe -- difftest > /tmp/ci_dt_boot.txt
dune exec bin/ticktock_cli.exe -- difftest --fork > /tmp/ci_dt_fork.txt
diff /tmp/ci_dt_boot.txt /tmp/ci_dt_fork.txt
dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 > /tmp/ci_fz_boot.txt
dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 --fork > /tmp/ci_fz_fork.txt
dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 --from-snapshot /tmp/ci_arm.snap > /tmp/ci_fz_file.txt
diff /tmp/ci_fz_boot.txt /tmp/ci_fz_fork.txt
diff /tmp/ci_fz_boot.txt /tmp/ci_fz_file.txt
# The unified `--exec boot|fork|snapshot:FILE` selector supersedes those
# flags (the lines above double as deprecated-alias regressions: --fork
# and --from-snapshot warn on stderr but keep working). Both spellings
# must be byte-identical, and an explicit --exec must win over an alias.
dune exec bin/ticktock_cli.exe -- difftest --exec fork > /tmp/ci_dt_exec.txt
diff /tmp/ci_dt_boot.txt /tmp/ci_dt_exec.txt
dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 --exec fork > /tmp/ci_fz_exec_fork.txt
dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 --exec snapshot:/tmp/ci_arm.snap > /tmp/ci_fz_exec_snap.txt
dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 --fork --exec boot 2>/dev/null > /tmp/ci_fz_exec_wins.txt
diff /tmp/ci_fz_boot.txt /tmp/ci_fz_exec_fork.txt
diff /tmp/ci_fz_boot.txt /tmp/ci_fz_exec_snap.txt
diff /tmp/ci_fz_boot.txt /tmp/ci_fz_exec_wins.txt
if dune exec bin/ticktock_cli.exe -- fuzz -k ticktock-arm -n 8 --exec warp 2>/dev/null; then
  echo "fuzz: bogus --exec spec was NOT refused"
  exit 1
fi
dune exec bin/ticktock_cli.exe -- chaos -k ticktock-arm -n 2 -f 30 --fork -o /tmp/ci_chaos_fork.txt
diff /tmp/ci_chaos_a.txt /tmp/ci_chaos_fork.txt
# ...and forking must stay byte-identical with trace linking disabled:
# snapshot restore severs links either way, so both engines replay the
# forked rounds to the same outcomes.
TICKTOCK_SUPERBLOCK=off dune exec bin/ticktock_cli.exe -- difftest --fork > /tmp/ci_dt_fork_sb_off.txt
diff /tmp/ci_dt_boot.txt /tmp/ci_dt_fork_sb_off.txt

# Snapshot bench gate: restoring the pristine image onto a dirty board
# must stay well clear of a cold boot, and the fork-mode campaign must
# reproduce boot-mode outcomes exactly.
dune exec bench/main.exe -- snapshot
python3 - <<'EOF'
import json
with open("BENCH_snapshot.json") as f:
    data = json.load(f)
fb = data["fresh_board"]
assert fb["restore_speedup"] >= 5.0, f"restore no longer beats cold boot 5x ({fb['restore_speedup']}x)"
assert data["fuzz_campaign"]["outcomes_identical"], "fork-mode fuzz diverged from boot mode"
print("snapshot smoke ok: restore %.1fx faster than boot, fork campaign identical" % fb["restore_speedup"])
EOF

# Fleet smoke: a small campaign's merged report must be byte-identical at
# every jobs setting, and a killed campaign (--stop-after) resumed from
# its store must reproduce the uninterrupted report exactly — stdout
# carries only the deterministic report, so plain diff is the oracle.
dune exec bin/ticktock_cli.exe -- fleet -n 240 -j 1 -o /tmp/ci_fleet_j1.txt
dune exec bin/ticktock_cli.exe -- fleet -n 240 -j 2 -o /tmp/ci_fleet_j2.txt
diff /tmp/ci_fleet_j1.txt /tmp/ci_fleet_j2.txt
rm -f /tmp/ci_fleet.store
if dune exec bin/ticktock_cli.exe -- fleet -n 240 -j 2 --store /tmp/ci_fleet.store --stop-after 80 2>/dev/null; then
  echo "fleet: interrupted campaign did NOT exit nonzero"
  exit 1
fi
dune exec bin/ticktock_cli.exe -- fleet -n 240 -j 2 --store /tmp/ci_fleet.store --resume -o /tmp/ci_fleet_resumed.txt
diff /tmp/ci_fleet_j1.txt /tmp/ci_fleet_resumed.txt

# Fleet bench gate: a >= 10k-board-instance campaign (FLEET_CELLS keeps CI
# hosts honest but the default IS the acceptance scale) must merge
# byte-identically at every jobs setting; the jobs=2 speedup is asserted
# only on multi-core hosts — on a 1-core runner two domains time-slice one
# core and the check would measure the scheduler, not the pool.
FLEET_CELLS=${FLEET_CELLS:-10000} dune exec bench/main.exe -- fleet
python3 - <<'EOF'
import json
with open("BENCH_fleet.json") as f:
    data = json.load(f)
assert data["reports_identical"], "fleet reports diverged across jobs settings"
assert data["cells"] >= 2000, f"fleet campaign too small ({data['cells']} cells)"
if data["host_cores"] >= 2:
    assert data["speedup_1_to_2"] >= 1.5, f"fleet scaling regressed ({data['speedup_1_to_2']}x jobs 1->2)"
    print("fleet smoke ok: %d cells, %.2fx jobs 1->2, reports identical" % (data["cells"], data["speedup_1_to_2"]))
else:
    print("fleet smoke ok: %d cells, reports identical (1-core host: scaling gate skipped, measured %.2fx)"
          % (data["cells"], data["speedup_1_to_2"]))
EOF
# Fabric smoke: the multi-board campaign's report must be byte-identical
# at every jobs setting, and a killed campaign (--stop-after) resumed from
# its store must reproduce the uninterrupted report exactly.
dune exec bin/ticktock_cli.exe -- fabric --plans clean,lossy -n 10 -j 1 -o /tmp/ci_fab_j1.txt
dune exec bin/ticktock_cli.exe -- fabric --plans clean,lossy -n 10 -j 2 -o /tmp/ci_fab_j2.txt
diff /tmp/ci_fab_j1.txt /tmp/ci_fab_j2.txt
rm -f /tmp/ci_fab.store
if dune exec bin/ticktock_cli.exe -- fabric --plans clean,lossy -n 10 -j 2 --store /tmp/ci_fab.store --stop-after 6 2>/dev/null; then
  echo "fabric: interrupted campaign did NOT exit nonzero"
  exit 1
fi
dune exec bin/ticktock_cli.exe -- fabric --plans clean,lossy -n 10 -j 2 --store /tmp/ci_fab.store --resume -o /tmp/ci_fab_resumed.txt
diff /tmp/ci_fab_j1.txt /tmp/ci_fab_resumed.txt

# Fabric absence gate: the fabric layer's footprint is host-side only —
# running a whole campaign in the same process must leave the modeled
# experiments byte-identical (same discipline as the obs/superblock
# invisibility gates; fabric counters are host-flagged metric rows).
FABRIC_CUTS=4 dune exec bench/main.exe -- fabric fig11 difftest latency fuzz > /tmp/ci_det_fab.txt
n=$(wc -l < /tmp/ci_det_a.txt)
tail -n "$n" /tmp/ci_det_fab.txt > /tmp/ci_det_fab_tail.txt
diff /tmp/ci_det_a.txt /tmp/ci_det_fab_tail.txt

# Fabric bench gate: the full sweep (a power cut at every tick of every
# plan) must classify every cut point, prove zero silent cross-board
# corruption, and merge byte-identically at every jobs setting.
FABRIC_CUTS=${FABRIC_CUTS:-36} dune exec bench/main.exe -- fabric
python3 - <<'EOF'
import json
with open("BENCH_fabric.json") as f:
    data = json.load(f)
assert data["reports_identical"], "fabric reports diverged across jobs settings"
assert data["silent_corruptions"] == 0, f"silent cross-board corruption ({data['silent_corruptions']})"
for row in data["scaling"]:
    assert row["ok"], f"fabric campaign failed at jobs={row['jobs']}"
print("fabric smoke ok: %d plans x %d cuts, zero silent corruption, reports identical"
      % (data["plans"], data["cuts_per_plan"]))
EOF

# Fuzzcov smoke: the guided campaign's report must be byte-identical at
# every jobs setting, and a killed campaign (--stop-after) resumed from
# its store must reproduce the uninterrupted report exactly — same
# stdout-is-the-oracle discipline as the fleet smoke above.
dune exec bin/ticktock_cli.exe -- fuzzcov -g 8 -j 1 -o /tmp/ci_fc_j1.txt
dune exec bin/ticktock_cli.exe -- fuzzcov -g 8 -j 2 -o /tmp/ci_fc_j2.txt
diff /tmp/ci_fc_j1.txt /tmp/ci_fc_j2.txt
rm -f /tmp/ci_fc.store
if dune exec bin/ticktock_cli.exe -- fuzzcov -g 8 -j 2 --store /tmp/ci_fc.store --stop-after 3 2>/dev/null; then
  echo "fuzzcov: interrupted campaign did NOT exit nonzero"
  exit 1
fi
dune exec bin/ticktock_cli.exe -- fuzzcov -g 8 -j 2 --store /tmp/ci_fc.store --resume -o /tmp/ci_fc_resumed.txt
diff /tmp/ci_fc_j1.txt /tmp/ci_fc_resumed.txt

# Crash triage: upstream Tock crashes under the fuzzer (the §2.2 wild-brk
# panic), so the campaign exits 2 by design; the first crasher must come
# out as a bundle and replaying that bundle must reproduce the same
# (class, site) — exit 0 from --replay is the reproduction oracle.
fc_status=0
dune exec bin/ticktock_cli.exe -- fuzzcov -k tock-arm-upstream -g 4 --bundle /tmp/ci_fc.bundle -o /tmp/ci_fc_upstream.txt || fc_status=$?
if [ "$fc_status" != 2 ]; then
  echo "fuzzcov: upstream campaign did not find a crasher (exit $fc_status)"
  exit 1
fi
dune exec bin/ticktock_cli.exe -- fuzzcov --replay /tmp/ci_fc.bundle

# Fuzzcov bench gate: guided evolution must reach the coverage target —
# the guided run's final bucket count — in fewer execs than blind random
# generation (FUZZCOV_GENS keeps CI fast; guidance is a deterministic
# function of the model, so this gate applies even on 1-core runners:
# only throughput numbers depend on the host, and those are not gated).
FUZZCOV_GENS=${FUZZCOV_GENS:-24} dune exec bench/main.exe -- fuzzcov
python3 - <<'EOF'
import json
with open("BENCH_fuzzcov.json") as f:
    data = json.load(f)
g, b = data["guided"], data["blind"]
assert g["bits"] > b["bits"], f"guided found no more buckets than blind ({g['bits']} vs {b['bits']})"
assert data["guided_wins"], "guided did not reach the coverage target in fewer execs than blind"
assert g["execs_to_target"] is not None and g["execs_to_target"] <= g["execs"], \
    f"guided never reached its own target ({g['execs_to_target']})"
assert g["crashers"] == 0, f"ticktock board crashed under fuzzing ({g['crashers']} crashers)"
blind_str = b["execs_to_target"] if b["execs_to_target"] is not None else "never"
print("fuzzcov smoke ok: %d buckets in %s execs guided vs %s blind (%d-core host)"
      % (data["target_bits"], g["execs_to_target"], blind_str, data["host_cores"]))
EOF

# Replay smoke: record a fuzz cell as a TICKRPL bundle, re-execute it to
# the recorded fingerprint (exit 0 from `replay run` is the oracle), and
# prove reverse execution byte-for-byte: goto T then back N must print
# exactly the same state and registers as a fresh forward run to T-N.
dune exec bin/ticktock_cli.exe -- replay record -k ticktock-arm --seed 7 --fuzzers 4 --steps 400 --interval 4 -o /tmp/ci_replay.tickrpl > /tmp/ci_rp_record.txt
dune exec bin/ticktock_cli.exe -- replay info /tmp/ci_replay.tickrpl > /dev/null
dune exec bin/ticktock_cli.exe -- replay run /tmp/ci_replay.tickrpl
dune exec bin/ticktock_cli.exe -- replay goto /tmp/ci_replay.tickrpl -t 6 > /tmp/ci_rp_fwd.txt
dune exec bin/ticktock_cli.exe -- replay back /tmp/ci_replay.tickrpl -t 10 -s 4 > /tmp/ci_rp_back.txt
diff /tmp/ci_rp_fwd.txt /tmp/ci_rp_back.txt
# ...and identically at a different navigation interval than the bundle
# was recorded with (snapshot spacing is a navigation cost knob, never a
# semantic one).
dune exec bin/ticktock_cli.exe -- replay back /tmp/ci_replay.tickrpl -t 10 -s 4 --interval 2 > /tmp/ci_rp_back_k2.txt
diff /tmp/ci_rp_fwd.txt /tmp/ci_rp_back_k2.txt
dune exec bin/ticktock_cli.exe -- replay mpu /tmp/ci_replay.tickrpl -t 6 > /dev/null
dune exec bin/ticktock_cli.exe -- replay trace /tmp/ci_replay.tickrpl -o /tmp/ci_rp_trace.json
grep -q traceEvents /tmp/ci_rp_trace.json

# A corrupted bundle must be refused (exit 1), never navigated.
head -c 64 /tmp/ci_replay.tickrpl > /tmp/ci_rp_trunc.tickrpl
if dune exec bin/ticktock_cli.exe -- replay run /tmp/ci_rp_trunc.tickrpl 2>/dev/null; then
  echo "replay: truncated bundle was NOT refused"
  exit 1
fi

# Failure cells come out of campaigns as bundles: the upstream crasher
# that fuzzcov finds must auto-emit under --bundles and replay
# byte-identically in a fresh process.
rm -rf /tmp/ci_rp_bundles
rp_status=0
dune exec bin/ticktock_cli.exe -- fuzzcov -k tock-arm-upstream -g 4 --bundles /tmp/ci_rp_bundles -o /dev/null || rp_status=$?
if [ "$rp_status" != 2 ]; then
  echo "fuzzcov --bundles: expected exit 2, got $rp_status"
  exit 1
fi
dune exec bin/ticktock_cli.exe -- replay run /tmp/ci_rp_bundles/fuzzcov-crasher-0.tickrpl

# Replay absence gate: a full record + navigate session in-process must
# leave the modeled experiments byte-identical — the recorder boots its
# own boards and reads fingerprints only at tick boundaries, so a
# session it does not own must never notice it ran.
dune exec bench/main.exe -- replay fig11 difftest latency fuzz > /tmp/ci_det_rp.txt
n=$(wc -l < /tmp/ci_det_a.txt)
tail -n "$n" /tmp/ci_det_rp.txt > /tmp/ci_det_rp_tail.txt
diff /tmp/ci_det_a.txt /tmp/ci_det_rp_tail.txt

# Replay bench gate: the bundle must reproduce, a backward step must be
# byte-identical to a fresh forward run, and recording must stay within
# a sane constant factor of a plain run (the absolute factor is
# host-dependent; only the order of magnitude is gated).
python3 - <<'EOF'
import json
with open("BENCH_replay.json") as f:
    data = json.load(f)
assert data["reproduced"], "recorded bundle did not reproduce its final fingerprint"
assert data["back_identical"], "backward step diverged from a fresh forward run"
assert data["record_overhead"] < 20.0, f"record overhead blew up ({data['record_overhead']}x)"
sweep = data["back_step_sweep"]
assert sweep and all(row["back_step_us"] > 0 for row in sweep), "empty back-step sweep"
print("replay smoke ok: %d ticks at %.2fx record overhead, reverse execution byte-identical"
      % (data["ticks"], data["record_overhead"]))
EOF
echo "ci ok"
