(* The ticktock command-line tool.

     ticktock boards                 list kernel configurations
     ticktock run [-k BOARD]        run the 21-app release suite
     ticktock difftest              compare Tock vs TickTock outputs (§6.1)
     ticktock attack [-k BOARD]     replay the §2.2/§3.4 exploits
     ticktock verify [-s SCALE]     check the proof components (§4)
     ticktock stats                 unified metrics after a suite run
     ticktock metrics [--json]      same snapshot, text or JSON
     ticktock trace [-o FILE]       run the suite, export a Chrome trace
     ticktock chaos [-n N] [-f N]   seeded fault-injection campaign
     ticktock snapshot ...          capture/inspect/verify board snapshots
     ticktock replay ...            record / navigate TICKRPL replay bundles

   fuzz, difftest and chaos take the shared execution spec
   `--exec boot|fork|snapshot:FILE` (fork = boot once per worker, restore
   the pristine post-boot image per cell; snapshot:FILE forks from an
   on-disk image whose versioned header is checked against the board).
   The old --fork / --from-snapshot FILE flags remain as deprecated
   aliases that warn on stderr. Campaign commands share one exit-code
   convention: 0 clean, 2 findings, 3 interrupted, 1 usage error.
*)

open Ticktock
open Cmdliner

let board_arg =
  let boards = List.map fst Boards.all_instances in
  let doc =
    Printf.sprintf "Kernel configuration to use. One of: %s." (String.concat ", " boards)
  in
  Arg.(value & opt string "ticktock-arm" & info [ "k"; "kernel" ] ~docv:"BOARD" ~doc)

let make_board name =
  match List.assoc_opt name Boards.all_instances with
  | Some make -> Ok (make ())
  | None -> Error (`Msg (Printf.sprintf "unknown board %S (try `ticktock boards')" name))

let boards_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Boards.all_instances;
    0
  in
  Cmd.v (Cmd.info "boards" ~doc:"List kernel configurations") Term.(const run $ const ())

let run_cmd =
  let run board verbose =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      let results = Apps.Difftest.run_suite k in
      List.iter
        (fun (r : Apps.Difftest.app_result) ->
          Printf.printf "=== %s [%s]\n" r.app.Apps.Suite.app_name r.state;
          if verbose then print_string r.output)
        results;
      Printf.printf "\n%d apps; console:\n%s" (List.length results) (k.Instance.console ());
      0
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print app output.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the 21-app release suite on a board")
    Term.(const run $ board_arg $ verbose)

let difftest_cmd =
  let run exec =
    match exec with
    | Error m -> Cli_common.usage_error m
    | Ok exec ->
      Verify.Violation.set_enabled false;
      let left = Apps.Difftest.run_suite ~exec (Boards.instance_ticktock_arm ()) in
      let right = Apps.Difftest.run_suite ~exec (Boards.instance_tock_arm ()) in
      Format.printf "%a@." Apps.Difftest.pp_comparison
        (Apps.Difftest.compare_suites ~left ~right);
      0
  in
  Cmd.v
    (Cmd.info "difftest" ~doc:"Differential-test Tock vs TickTock (§6.1)")
    Term.(const run $ Cli_common.exec_term)

let attack_cmd =
  let run board =
    match List.assoc_opt board Boards.all_instances with
    | None ->
      Printf.eprintf "unknown board %S\n" board;
      1
    | Some make ->
      let broken = ref 0 in
      List.iter
        (fun (a : Apps.Attacks.attack) ->
          let outcome =
            Verify.Violation.with_enabled false (fun () -> Apps.Attacks.run_attack make a)
          in
          (match outcome with
          | Apps.Attacks.Broken_isolation | Apps.Attacks.Kernel_dos _ -> incr broken
          | Apps.Attacks.Contained | Apps.Attacks.Contained_fault | Apps.Attacks.Load_failed _
            -> ());
          Printf.printf "%-20s %s\n" a.attack_name (Apps.Attacks.outcome_to_string outcome))
        Apps.Attacks.all;
      Printf.printf "\n%d attack(s) broke isolation on %s\n" !broken board;
      if !broken = 0 then 0 else 2
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Replay the paper's exploits against a board")
    Term.(const run $ board_arg)

let verify_cmd =
  let run scale =
    let name, props = Proofs.upstream_bug_hunt ~scale:(min scale 0.4) in
    let bug_report = Verify.Checker.check_component name props in
    Format.printf "%a@." Verify.Checker.pp_report bug_report;
    let reports =
      List.map
        (fun (cname, cprops) -> Verify.Checker.check_component cname cprops)
        (Proofs.components ~scale)
    in
    List.iter (fun r -> Format.printf "%a@." Verify.Checker.pp_report r) reports;
    Format.printf "%a@." Verify.Report.pp_timing_table
      (List.map
         (fun (r : Verify.Checker.component_report) ->
           (r.Verify.Checker.component, Verify.Report.timing_stats r))
         reports);
    if List.for_all Verify.Checker.all_verified reports then 0 else 1
  in
  let scale =
    Arg.(value & opt float 0.3 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc:"Domain scale.")
  in
  Cmd.v (Cmd.info "verify" ~doc:"Check the proof components (§4)") Term.(const run $ scale)

let fuzz_cmd =
  let run board seeds exec =
    match (List.assoc_opt board Boards.all_instances, exec) with
    | None, _ ->
      Printf.eprintf "unknown board %S\n" board;
      1
    | Some _, Error m -> Cli_common.usage_error m
    | Some make, Ok exec ->
      let contracts =
        (* contracts on for the verified kernels, off for the baselines *)
        String.length board >= 8 && String.sub board 0 8 = "ticktock"
      in
      let rounds, panics =
        Verify.Violation.with_enabled contracts (fun () ->
            Apps.Fuzz.campaign ~exec ~seeds make)
      in
      List.iter
        (fun (r : Apps.Fuzz.outcome) ->
          Printf.printf "seed %3d: witness=%b isolation=%b faulted=%d exited=%d%s\n"
            r.fuzz_seed r.witness_ok r.isolation_ok r.fuzzers_faulted r.fuzzers_exited
            (match r.kernel_panic with
            | Some msg -> "  KERNEL PANIC: " ^ msg
            | None -> ""))
        rounds;
      Printf.printf "\n%d/%d rounds panicked the kernel\n" (List.length panics)
        (List.length rounds);
      if List.length panics = 0 then Cli_common.exit_clean else Cli_common.exit_findings
  in
  let seeds = Arg.(value & opt int 20 & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Seeds to try.") in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a board with hostile syscall/memory streams")
    Term.(const run $ board_arg $ seeds $ Cli_common.exec_term)

let chaos_cmd =
  let run board nseeds faults out exec =
    let boards =
      match board with
      | None -> Ok Chaos.Targets.boards
      | Some name -> (
        match Chaos.Targets.find name with
        | Some b -> Ok [ b ]
        | None ->
          Error
            (Printf.sprintf "unknown chaos target %S (one of: %s)" name
               (String.concat ", "
                  (List.map (fun b -> b.Chaos.Targets.tb_name) Chaos.Targets.boards))))
    in
    match (boards, exec) with
    | Error m, _ | _, Error m -> Cli_common.usage_error m
    | Ok boards, Ok exec ->
      let seeds = List.init nseeds (fun i -> i + 1) in
      let result =
        Verify.Violation.with_enabled true (fun () ->
            Chaos.Campaign.run ~exec ~boards ~seeds ~faults ())
      in
      Printf.eprintf "chaos: %d faults fired, %d masked / %d healed / %d contained\n"
        result.Chaos.Campaign.total_fired result.Chaos.Campaign.total_masked
        result.Chaos.Campaign.total_healed result.Chaos.Campaign.total_contained;
      Cli_common.finish ~label:"chaos" ~ok:result.Chaos.Campaign.ok ~out
        result.Chaos.Campaign.report
  in
  let board =
    let doc =
      "Chaos target board (default: all three MPU architectures). One of: "
      ^ String.concat ", " (List.map (fun b -> b.Chaos.Targets.tb_name) Chaos.Targets.boards)
      ^ "."
    in
    Arg.(value & opt (some string) None & info [ "k"; "kernel" ] ~docv:"BOARD" ~doc)
  in
  let seeds =
    Arg.(value & opt int 5 & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Fault-plan seeds per board.")
  in
  let faults =
    Arg.(value & opt int 40 & info [ "f"; "faults" ] ~docv:"N" ~doc:"Faults per round.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign (golden vs injected suite runs; every fault \
          classified masked/healed/contained)")
    Term.(const run $ board $ seeds $ faults $ Cli_common.out_arg $ Cli_common.exec_term)

let snapshot_cmd =
  let run board out info_path check_path =
    try
      match (info_path, check_path, out) with
      | Some path, _, _ ->
        (* inspect the versioned header without needing a board *)
        let header, pages = Snapshot.describe path in
        Printf.printf "%s: version %d  arch %s  board %s\n" path header.Snapshot.hd_version
          header.Snapshot.hd_arch header.Snapshot.hd_board;
        Printf.printf "layout %s  memory %s  %d page(s)\n"
          (Fp.to_hex header.Snapshot.hd_layout_fp)
          (Fp.to_hex header.Snapshot.hd_mem_fp)
          pages;
        0
      | None, Some path, _ -> (
        (* boot the board and load the file — every header check armed *)
        match make_board board with
        | Error (`Msg m) ->
          prerr_endline m;
          1
        | Ok k -> (
          match k.Instance.snap_target with
          | None ->
            Printf.eprintf "board %s has no snapshot target\n" board;
            1
          | Some tgt ->
            Snapshot.load tgt path;
            Printf.printf "%s: ok — restores onto %s (memory %s)\n" path board
              (Fp.to_hex (Memory.fingerprint tgt.Snapshot.tg_mem));
            0))
      | None, None, Some path -> (
        (* capture the pristine post-boot image to a file *)
        match make_board board with
        | Error (`Msg m) ->
          prerr_endline m;
          1
        | Ok k -> (
          match k.Instance.snap_target with
          | None ->
            Printf.eprintf "board %s has no snapshot target\n" board;
            1
          | Some tgt ->
            Snapshot.save tgt path;
            let header, pages = Snapshot.describe path in
            Printf.printf "wrote %s: arch %s  board %s  memory %s  %d page(s)\n" path
              header.Snapshot.hd_arch header.Snapshot.hd_board
              (Fp.to_hex header.Snapshot.hd_mem_fp)
              pages;
            0))
      | None, None, None ->
        prerr_endline "snapshot: one of -o FILE, --info FILE or --check FILE is required";
        1
    with Invalid_argument m | Failure m ->
      prerr_endline m;
      1
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Capture the board's pristine post-boot snapshot to $(docv).")
  in
  let info_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "info" ] ~docv:"FILE" ~doc:"Print the versioned header of $(docv) and exit.")
  in
  let check_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "Boot the board and restore $(docv) onto it, refusing a mismatched architecture, \
             board or memory layout.")
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Capture, inspect or verify on-disk board snapshots (versioned TICKSNAP format)")
    Term.(const run $ board_arg $ out $ info_path $ check_path)

let ps_cmd =
  let run2 board =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      let results = Apps.Difftest.run_suite ~max_ticks:300 k in
      List.iter
        (fun (r : Apps.Difftest.app_result) ->
          Printf.printf "%-22s %s\n" r.app.Apps.Suite.app_name r.state)
        results;
      0
  in
  Cmd.v
    (Cmd.info "ps" ~doc:"Process states after a short suite run")
    Term.(const run2 $ board_arg)

(* `stats` used to print only the per-method cycle hooks, silently dropping
   the icache/bus-cache counters Instance already tracked; it now goes
   through the one unified snapshot, which subsumes the hooks table. *)
let stats_cmd =
  let run board =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      ignore (Apps.Difftest.run_suite k);
      Format.printf "%a@." Obs.Metrics.pp (k.Instance.metrics ());
      0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Unified metrics snapshot after a suite run")
    Term.(const run $ board_arg)

let metrics_cmd =
  let run board json =
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      Verify.Violation.set_enabled false;
      ignore (Apps.Difftest.run_suite k);
      let snap = k.Instance.metrics () in
      if json then print_string (Obs.Metrics.to_json snap)
      else print_string (Obs.Metrics.to_text snap);
      0
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the stable JSON dump.") in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Unified metrics snapshot (text or JSON) after a suite run")
    Term.(const run $ board_arg $ json)

let trace_cmd =
  let run board out =
    (* Build the board with a recorder attached (the ambient mode reaches
       through the closure-built constructors), then run the release suite
       under it and export the ring as a Chrome trace. *)
    Obs.Config.set_auto Obs.Config.On;
    match make_board board with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok k ->
      (match k.Instance.obs () with
      | None ->
        prerr_endline "internal error: no recorder attached";
        1
      | Some r ->
        (* Contracts stay armed so a failure lands in the trace's
           contracts lane; on a buggy board the first violation ends the
           trace early (with the event in place) rather than the run. *)
        Verify.Violation.set_obs
          (Some (Obs.Recorder.sink r ~now:(fun () -> k.Instance.ticks ())));
        (try ignore (Apps.Difftest.run_suite k)
         with Verify.Violation.Violation v ->
           Format.eprintf "contract fired during trace: %a@." Verify.Violation.pp v);
        Verify.Violation.set_obs None;
        let json = Obs.Chrome.to_json ~name:board r in
        (match out with
        | None -> print_string json
        | Some path ->
          let oc = open_out path in
          output_string oc json;
          close_out oc;
          Printf.printf "wrote %s (%d events recorded, %d dropped)\n" path
            (Obs.Recorder.recorded r) (Obs.Recorder.dropped r));
        0)
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the release suite with tracing on; export Chrome trace_event JSON")
    Term.(const run $ board_arg $ out)

let fleet_cmd =
  let run cells boards jobs store resume stop_after bundles out =
    try
      let spec =
        let d = Fleet.Campaign.default_spec in
        {
          d with
          Fleet.Campaign.sp_cells = cells;
          sp_boards =
            (match boards with
            | None -> d.Fleet.Campaign.sp_boards
            | Some s -> String.split_on_char ',' s |> List.filter (fun b -> b <> ""));
        }
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Verify.Violation.with_enabled true (fun () ->
            Fleet.Campaign.run ?jobs ?store ~resume ?stop_after spec)
      in
      let dt = Unix.gettimeofday () -. t0 in
      (* Throughput goes to stderr: stdout carries only the deterministic
         report, so CI can byte-diff it across jobs settings and
         kill/resume splits. *)
      Printf.eprintf
        "fleet: %d cells (%d ran, %d resumed) on %d pristine images, %d steals, %.2fs \
         (%.0f cells/sec)\n"
        (Array.length r.Fleet.Campaign.fl_cells)
        r.Fleet.Campaign.fl_ran r.Fleet.Campaign.fl_resumed r.Fleet.Campaign.fl_booted
        r.Fleet.Campaign.fl_steals dt
        (if dt > 0. then float_of_int r.Fleet.Campaign.fl_ran /. dt else 0.);
      if not r.Fleet.Campaign.fl_complete then Cli_common.interrupted ~label:"fleet"
      else begin
        (match bundles with
        | None -> ()
        | Some dir ->
          let failing =
            Array.to_list r.Fleet.Campaign.fl_cells
            |> List.filter_map (function
                 | Some (c : Fleet.Campaign.cell)
                   when c.Fleet.Campaign.cl_panic
                        || not
                             (c.Fleet.Campaign.cl_witness_ok
                             && c.Fleet.Campaign.cl_isolation_ok) ->
                   Some
                     ( Printf.sprintf "fleet-cell-%d" c.Fleet.Campaign.cl_index,
                       fun () -> Replay.Record.of_fleet_cell spec c )
                 | _ -> None)
          in
          Cli_common.write_bundles ~label:"fleet" ~dir failing);
        Cli_common.finish ~label:"fleet" ~ok:r.Fleet.Campaign.fl_ok ~out
          r.Fleet.Campaign.fl_report
      end
    with
    | Invalid_argument m | Failure m -> Cli_common.usage_error m
    | Fleet.Store.Refused m -> Cli_common.usage_error m
  in
  let cells =
    Arg.(
      value & opt int 600
      & info [ "n"; "cells" ] ~docv:"N" ~doc:"Board-instances to fork across the campaign.")
  in
  let boards =
    Arg.(
      value
      & opt (some string) None
      & info [ "boards" ] ~docv:"B1,B2"
          ~doc:"Comma-separated verified boards to schedule (default: arm, arm-v8, e310).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: $(b,TICKTOCK_JOBS) or the host core count).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:"Persist completed cells to $(docv) (versioned, append-only, resumable).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Recover committed cells from $(b,--store) and run only the rest.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Stop dispatching after about $(docv) new cells (deterministic kill, for \
             resumability testing).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Fleet-scale campaign: snapshot-fork thousands of board-instances across a \
          work-stealing domain pool")
    Term.(
      const run $ cells $ boards $ jobs $ store $ resume $ stop_after $ Cli_common.bundles_arg
      $ Cli_common.out_arg)

let fabric_cmd =
  let run plans cuts horizon jobs store resume stop_after bundles out =
    try
      let spec =
        let d = Fabric.Campaign.default_spec in
        {
          d with
          Fabric.Campaign.fb_cuts = cuts;
          fb_horizon = horizon;
          fb_plans =
            (match plans with
            | None -> d.Fabric.Campaign.fb_plans
            | Some s -> String.split_on_char ',' s |> List.filter (fun p -> p <> ""));
        }
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Verify.Violation.with_enabled true (fun () ->
            Fabric.Campaign.run ?jobs ?store ~resume ?stop_after spec)
      in
      let dt = Unix.gettimeofday () -. t0 in
      (* stdout carries only the deterministic report; throughput and
         progress go to stderr so CI can byte-diff stdout across jobs
         settings and kill/resume splits *)
      Printf.eprintf
        "fabric: %d cut points (%d ran, %d resumed), %d steals, %.2fs (%.1f cells/sec)\n"
        (Array.length r.Fabric.Campaign.fb_cells)
        r.Fabric.Campaign.fb_ran r.Fabric.Campaign.fb_resumed r.Fabric.Campaign.fb_steals dt
        (if dt > 0. then float_of_int r.Fabric.Campaign.fb_ran /. dt else 0.);
      if not r.Fabric.Campaign.fb_complete then Cli_common.interrupted ~label:"fabric"
      else begin
        (match bundles with
        | None -> ()
        | Some dir ->
          let failing =
            Array.to_list r.Fabric.Campaign.fb_cells
            |> List.filter_map (function
                 | Some (c : Fabric.Campaign.cell) when not c.Fabric.Campaign.fc_ok ->
                   Some
                     ( Printf.sprintf "fabric-cell-%d" c.Fabric.Campaign.fc_index,
                       fun () -> Replay.Record.of_fabric_cell spec c )
                 | _ -> None)
          in
          Cli_common.write_bundles ~label:"fabric" ~dir failing);
        Cli_common.finish ~label:"fabric" ~ok:r.Fabric.Campaign.fb_ok ~out
          r.Fabric.Campaign.fb_report
      end
    with
    | Invalid_argument m | Failure m -> Cli_common.usage_error m
    | Fleet.Store.Refused m -> Cli_common.usage_error m
  in
  let plans =
    Arg.(
      value
      & opt (some string) None
      & info [ "plans" ] ~docv:"P1,P2"
          ~doc:"Comma-separated fault plans to sweep (default: clean, lossy, storm, chaos).")
  in
  let cuts =
    Arg.(
      value & opt int 36
      & info [ "n"; "cuts" ] ~docv:"N" ~doc:"Power-cut ticks swept per plan (1..N).")
  in
  let horizon =
    Arg.(
      value & opt int 64
      & info [ "horizon" ] ~docv:"T" ~doc:"Global ticks per cell (must exceed the last cut).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: $(b,TICKTOCK_JOBS) or the host core count).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:"Persist completed cells to $(docv) (versioned, append-only, resumable).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Recover committed cells from $(b,--store) and run only the rest.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Stop dispatching after about $(docv) new cells (deterministic kill, for \
             resumability testing).")
  in
  Cmd.v
    (Cmd.info "fabric"
       ~doc:
         "Multi-board fabric campaign: OTA updates and gateway traffic under link faults, \
          with a power cut at every tick, classified for cross-board containment")
    Term.(
      const run $ plans $ cuts $ horizon $ jobs $ store $ resume $ stop_after
      $ Cli_common.bundles_arg $ Cli_common.out_arg)

let fuzzcov_cmd =
  let run board seed pop gens jobs store resume stop_after bundle bundles replay out =
    try
      match replay with
      | Some path -> (
        (* replay mode: reproduce a crasher bundle, ignore campaign flags *)
        match Fuzzcov.Engine.read_bundle path with
        | None ->
          Printf.eprintf "fuzzcov: %s is not a crasher bundle\n" path;
          1
        | Some b ->
          let reproduced, observed = Fuzzcov.Engine.replay b in
          Printf.printf "bundle: board %s  class %s  site %S\n" b.Fuzzcov.Engine.bu_board
            (Verify.Taxonomy.name b.Fuzzcov.Engine.bu_class)
            b.Fuzzcov.Engine.bu_site;
          (match observed with
          | Some (cls, site) ->
            Printf.printf "replay: crashed as %s at %S — %s\n" (Verify.Taxonomy.name cls) site
              (if reproduced then "reproduced" else "DIFFERENT CRASH")
          | None -> Printf.printf "replay: no crash — NOT reproduced\n");
          if reproduced then 0 else 2)
      | None ->
        let spec =
          {
            Fuzzcov.Engine.default_spec with
            Fuzzcov.Engine.fc_board = board;
            fc_seed = seed;
            fc_pop = pop;
            fc_gens = gens;
          }
        in
        let t0 = Unix.gettimeofday () in
        let r = Fuzzcov.Engine.run ?jobs ?store ~resume ?stop_after spec in
        let dt = Unix.gettimeofday () -. t0 in
        (* Throughput goes to stderr: stdout carries only the deterministic
           report, so CI can byte-diff it across jobs settings and
           kill/resume splits. *)
        Printf.eprintf
          "fuzzcov: %d execs (%d gens ran, %d resumed), %d corpus, %d buckets, %.2fs (%.0f \
           execs/sec)\n"
          r.Fuzzcov.Engine.fz_execs r.Fuzzcov.Engine.fz_ran_gens r.Fuzzcov.Engine.fz_resumed_gens
          (List.length r.Fuzzcov.Engine.fz_corpus)
          r.Fuzzcov.Engine.fz_bits dt
          (if dt > 0. then
             float_of_int (r.Fuzzcov.Engine.fz_ran_gens * spec.Fuzzcov.Engine.fc_pop) /. dt
           else 0.);
        if not r.Fuzzcov.Engine.fz_complete then Cli_common.interrupted ~label:"fuzzcov"
        else begin
          (match (bundle, r.Fuzzcov.Engine.fz_crashers) with
          | Some path, c :: _ ->
            Fuzzcov.Engine.write_bundle path (Fuzzcov.Engine.bundle_of_crasher ~board c);
            Printf.eprintf "fuzzcov: wrote first crasher to %s\n" path
          | Some _, [] -> Printf.eprintf "fuzzcov: no crashers, no bundle written\n"
          | None, _ -> ());
          (match bundles with
          | None -> ()
          | Some dir ->
            let crashers =
              List.mapi
                (fun i (c : Fuzzcov.Engine.crasher) ->
                  ( Printf.sprintf "fuzzcov-crasher-%d" i,
                    fun () -> Replay.Record.of_fuzzcov spec c ))
                r.Fuzzcov.Engine.fz_crashers
            in
            Cli_common.write_bundles ~label:"fuzzcov" ~dir crashers);
          Cli_common.finish ~label:"fuzzcov" ~ok:r.Fuzzcov.Engine.fz_ok ~out
            r.Fuzzcov.Engine.fz_report
        end
    with
    | Invalid_argument m | Failure m -> Cli_common.usage_error m
    | Fleet.Store.Refused m -> Cli_common.usage_error m
  in
  let board =
    Arg.(
      value
      & opt string Fuzzcov.Engine.default_spec.Fuzzcov.Engine.fc_board
      & info [ "k"; "board" ] ~docv:"BOARD"
          ~doc:
            "Board to fuzz (ticktock-arm-mc populates the coverage map; the tock-arm-* \
             baselines have real crashes to find).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign master seed.")
  in
  let pop =
    Arg.(
      value & opt int Fuzzcov.Engine.default_spec.Fuzzcov.Engine.fc_pop
      & info [ "p"; "pop" ] ~docv:"N" ~doc:"Candidates per generation.")
  in
  let gens =
    Arg.(
      value & opt int Fuzzcov.Engine.default_spec.Fuzzcov.Engine.fc_gens
      & info [ "g"; "gens" ] ~docv:"N" ~doc:"Generations to evolve.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: $(b,TICKTOCK_JOBS) or the host core count).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:"Persist completed generations to $(docv) (versioned, append-only, resumable).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Recover committed generations from $(b,--store) and run only the rest.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) newly executed generations (deterministic kill, for \
             resumability testing).")
  in
  let bundle =
    Arg.(
      value
      & opt (some string) None
      & info [ "bundle" ] ~docv:"FILE"
          ~doc:"Write the first crasher as a replayable bundle to $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a crasher bundle written by $(b,--bundle) and verify it reproduces.")
  in
  Cmd.v
    (Cmd.info "fuzzcov"
       ~doc:
         "Coverage-guided fuzzing: evolve syscall/interrupt schedules against the icache \
          coverage map, triage crashers, emit replayable bundles")
    Term.(
      const run $ board $ seed $ pop $ gens $ jobs $ store $ resume $ stop_after $ bundle
      $ Cli_common.bundles_arg $ replay $ Cli_common.out_arg)

(* --- ticktock replay: record and navigate TICKRPL bundles --- *)

let replay_group =
  let bundle_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE" ~doc:"TICKRPL bundle file.")
  in
  let tick_arg =
    Arg.(value & opt int 0 & info [ "t"; "tick" ] ~docv:"T" ~doc:"Target tick.")
  in
  let interval_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "interval" ] ~docv:"K"
          ~doc:
            "Interval-snapshot spacing for navigation (default: the bundle's recording \
             interval). Backward steps cost at most K ticks of re-execution.")
  in
  (* Load the bundle and run [f] with contracts armed the way the bundle's
     subject expects; every refusal (bad magic/version/layout, fingerprint
     divergence) is a clean exit 1 with the reason on stderr. *)
  let with_bundle path f =
    try
      let b = Replay.Bundle.load path in
      Replay.Record.with_contracts b (fun () -> f b)
    with Replay.Bundle.Refused m | Invalid_argument m | Failure m -> Cli_common.usage_error m
  in
  let nav_to b interval tick =
    let nav = Replay.Record.navigator ?interval b in
    Replay.Navigator.goto nav tick;
    nav
  in
  let print_state nav =
    Printf.printf "tick %d  fp %s\n" (Replay.Navigator.tick nav)
      (Fp.to_hex (Replay.Navigator.fingerprint nav));
    match Replay.Navigator.crash nav with
    | Some c -> Printf.printf "crash at tick %d: %s\n" c.Replayable.cr_tick c.Replayable.cr_reason
    | None -> ()
  in
  let print_regs nav =
    match Replay.Navigator.regs nav with
    | [] -> print_endline "(no architectural registers on this session)"
    | regs -> List.iter (fun (n, v) -> Printf.printf "%-4s %s\n" n v) regs
  in
  let info_cmd =
    let run path =
      try
        let b = Replay.Bundle.load path in
        Format.printf "%a@." Replay.Bundle.pp b;
        let sched = Replay.Bundle.schedule b in
        if sched <> [] then Format.printf "schedule:@.%s" (Replay.Schedule.encode sched);
        0
      with Replay.Bundle.Refused m -> Cli_common.usage_error m
    in
    Cmd.v
      (Cmd.info "info" ~doc:"Print a bundle's header and input schedule")
      Term.(const run $ bundle_pos)
  in
  let run_cmd =
    let run path =
      with_bundle path (fun b ->
          if Replay.Record.reproduces b then begin
            Printf.printf "reproduced: %d ticks to fp %s%s\n" b.Replay.Bundle.bu_header.Replay.Bundle.hd_horizon
              (Fp.to_hex b.Replay.Bundle.bu_header.Replay.Bundle.hd_final_fp)
              (match b.Replay.Bundle.bu_header.Replay.Bundle.hd_crash with
              | Some (tick, reason) -> Printf.sprintf " (crash at %d: %s)" tick reason
              | None -> "");
            Cli_common.exit_clean
          end
          else begin
            Printf.printf "DIVERGED: replay does not reproduce the recording\n";
            Cli_common.exit_findings
          end)
    in
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Re-execute a bundle to its recorded horizon and verify the final fingerprint \
            (and crash) reproduce byte-identically")
      Term.(const run $ bundle_pos)
  in
  let goto_cmd =
    let run path tick interval =
      with_bundle path (fun b ->
          let nav = nav_to b interval tick in
          print_state nav;
          print_regs nav;
          0)
    in
    Cmd.v
      (Cmd.info "goto" ~doc:"Run to tick T and show the machine state")
      Term.(const run $ bundle_pos $ tick_arg $ interval_arg)
  in
  let back_cmd =
    let run path tick n interval =
      with_bundle path (fun b ->
          let nav = nav_to b interval tick in
          Replay.Navigator.back nav n;
          print_state nav;
          print_regs nav;
          0)
    in
    let n =
      Arg.(value & opt int 1 & info [ "s"; "steps" ] ~docv:"N" ~doc:"Ticks to step backward.")
    in
    Cmd.v
      (Cmd.info "back"
         ~doc:
           "Run to tick T, then step backward N ticks (restore the nearest interval \
            snapshot and re-execute — output must be byte-identical to goto T-N)")
      Term.(const run $ bundle_pos $ tick_arg $ n $ interval_arg)
  in
  let regs_cmd =
    let run path tick interval =
      with_bundle path (fun b ->
          print_regs (nav_to b interval tick);
          0)
    in
    Cmd.v
      (Cmd.info "regs" ~doc:"Architectural registers at tick T")
      Term.(const run $ bundle_pos $ tick_arg $ interval_arg)
  in
  let mem_cmd =
    let run path tick addr len interval =
      with_bundle path (fun b ->
          let nav = nav_to b interval tick in
          let bytes = Replay.Navigator.mem_read nav ~addr ~len in
          String.iteri
            (fun i c ->
              if i mod 16 = 0 then Printf.printf "%s%08x: " (if i > 0 then "\n" else "") (addr + i);
              Printf.printf "%02x " (Char.code c))
            bytes;
          if String.length bytes > 0 then print_newline ();
          0)
    in
    let addr =
      Arg.(
        required
        & opt (some int) None
        & info [ "addr" ] ~docv:"ADDR" ~doc:"Start address (accepts 0x... notation).")
    in
    let len = Arg.(value & opt int 64 & info [ "len" ] ~docv:"N" ~doc:"Bytes to dump.") in
    Cmd.v
      (Cmd.info "mem" ~doc:"Hex-dump memory at tick T")
      Term.(const run $ bundle_pos $ tick_arg $ addr $ len $ interval_arg)
  in
  let mpu_cmd =
    let run path tick interval =
      with_bundle path (fun b ->
          let nav = nav_to b interval tick in
          print_string (Replay.Navigator.mpu nav);
          (match Replay.Navigator.violations nav with
          | [] -> ()
          | vs ->
            print_endline "violation sites:";
            List.iter
              (fun (at, e) -> Format.printf "  tick %d: %a@." at Obs.Event.pp e)
              vs);
          0)
    in
    Cmd.v
      (Cmd.info "mpu" ~doc:"MPU/PMP configuration and violation sites at tick T")
      Term.(const run $ bundle_pos $ tick_arg $ interval_arg)
  in
  let trace_cmd =
    let run path from_ to_ out =
      try
        let b = Replay.Bundle.load path in
        let hi =
          match to_ with Some t -> t | None -> b.Replay.Bundle.bu_header.Replay.Bundle.hd_horizon
        in
        let r =
          Obs.Recorder.create
            ~capacity:(max 16 (List.length b.Replay.Bundle.bu_events))
            ()
        in
        List.iter
          (fun (at, e) -> Obs.Recorder.record r ~tick:at e)
          b.Replay.Bundle.bu_events;
        let json =
          Obs.Chrome.to_json ~name:(Replay.Bundle.subject b) ~window:(from_, hi) r
        in
        (match out with
        | None -> print_string json
        | Some p ->
          let oc = open_out p in
          output_string oc json;
          close_out oc;
          Printf.eprintf "replay: wrote %s\n" p);
        0
      with Replay.Bundle.Refused m -> Cli_common.usage_error m
    in
    let from_ =
      Arg.(value & opt int 0 & info [ "from" ] ~docv:"T" ~doc:"Window start tick (inclusive).")
    in
    let to_ =
      Arg.(
        value
        & opt (some int) None
        & info [ "to" ] ~docv:"T" ~doc:"Window end tick (inclusive; default: the horizon).")
    in
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "Export the recorded event log (or any tick window of it) as Chrome trace_event \
            JSON, without re-execution")
      Term.(const run $ bundle_pos $ from_ $ to_ $ Cli_common.out_arg)
  in
  let record_cmd =
    let run board seed fuzzers steps ticks interval note out =
      try
        let b =
          Verify.Violation.with_enabled (Replay.Record.contracts_for board) (fun () ->
              let sched = Replay.Schedule.fleet_cell ~seed ~fuzzers ~steps in
              let lv = Replay.Record.board_live ~board ~horizon:ticks sched in
              Replay.Record.record ~interval ~note lv)
        in
        Replay.Bundle.save b out;
        Printf.eprintf "replay: wrote %s\n" out;
        Format.printf "%a@." Replay.Bundle.pp b;
        0
      with
      | Replay.Bundle.Refused m | Invalid_argument m | Failure m -> Cli_common.usage_error m
    in
    let board =
      Arg.(
        value & opt string "ticktock-arm"
        & info [ "k"; "board" ] ~docv:"BOARD" ~doc:"Board to record.")
    in
    let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Cell seed.") in
    let fuzzers =
      Arg.(value & opt int 3 & info [ "fuzzers" ] ~docv:"N" ~doc:"Hostile apps to load.")
    in
    let steps =
      Arg.(value & opt int 60 & info [ "steps" ] ~docv:"N" ~doc:"Syscalls per hostile stream.")
    in
    let ticks =
      Arg.(value & opt int 1500 & info [ "ticks" ] ~docv:"T" ~doc:"Scheduler ticks to record.")
    in
    let interval =
      Arg.(
        value & opt int 32
        & info [ "interval" ] ~docv:"K" ~doc:"Fingerprint-mark spacing in the bundle.")
    in
    let note = Arg.(value & opt string "" & info [ "note" ] ~docv:"S" ~doc:"Free-form note.") in
    let out =
      Arg.(
        required
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Bundle file to write.")
    in
    Cmd.v
      (Cmd.info "record"
         ~doc:
           "Record a fuzz cell (witness + hostile streams) on a board as a replayable \
            TICKRPL bundle")
      Term.(const run $ board $ seed $ fuzzers $ steps $ ticks $ interval $ note $ out)
  in
  Cmd.group
    (Cmd.info "replay"
       ~doc:
         "Time-travel debugging: record executions as TICKRPL bundles, re-run them \
          byte-identically, step backward, inspect registers/memory/MPU state, export \
          traces")
    [
      record_cmd; info_cmd; run_cmd; goto_cmd; back_cmd; regs_cmd; mem_cmd; mpu_cmd; trace_cmd;
    ]

let () =
  let doc = "TickTock: verified isolation in a modeled embedded OS" in
  let info = Cmd.info "ticktock" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            boards_cmd;
            run_cmd;
            difftest_cmd;
            attack_cmd;
            verify_cmd;
            stats_cmd;
            metrics_cmd;
            trace_cmd;
            fuzz_cmd;
            fleet_cmd;
            fabric_cmd;
            fuzzcov_cmd;
            snapshot_cmd;
            chaos_cmd;
            replay_group;
            ps_cmd;
          ]))
