(* Shared command-line conventions for the campaign subcommands.

   Two things every campaign command (fuzz, difftest, chaos, fleet,
   fuzzcov, fabric) used to spell slightly differently, now spelled once:

   - the execution spec: `--exec boot|fork|snapshot:FILE`, with the
     deprecated `--fork` / `--from-snapshot FILE` spellings kept as
     warning aliases (Replayable.Exec.of_flags resolves the precedence);

   - the exit-code and output discipline: 0 clean / 2 findings /
     3 interrupted / 1 usage error, stdout carrying only the
     deterministic report (so CI can byte-diff it across jobs settings
     and kill/resume splits) and everything else — progress, "wrote
     FILE" notices, deprecation warnings — going to stderr. *)

open Ticktock
open Cmdliner

(* --- the execution spec --- *)

let exec_term =
  let exec =
    Arg.(
      value
      & opt (some string) None
      & info [ "exec" ] ~docv:"SPEC"
          ~doc:
            "How to obtain a board per cell: $(b,boot) (build a fresh board every time), \
             $(b,fork) (boot once per worker, restore the pristine post-boot image in front \
             of every cell), or $(b,snapshot:FILE) (fork from the on-disk image in FILE; \
             refuses a mismatched architecture, board or memory layout). Outputs must be \
             byte-identical across all three.")
  in
  let fork =
    Arg.(value & flag & info [ "fork" ] ~doc:"Deprecated alias for $(b,--exec fork).")
  in
  let from_snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-snapshot" ] ~docv:"FILE"
          ~doc:"Deprecated alias for $(b,--exec snapshot:FILE).")
  in
  Term.(
    const (fun exec fork from_snapshot -> Replayable.Exec.of_flags ~fork ~from_snapshot exec)
    $ exec $ fork $ from_snapshot)

(* --- exit codes and the report stream --- *)

let exit_clean = 0
let exit_usage = 1
let exit_findings = 2
let exit_interrupted = 3

(** The campaign was stopped before every cell was accounted for. *)
let interrupted ~label =
  Printf.eprintf "%s: campaign interrupted (resume it with --resume)\n" label;
  exit_interrupted

let usage_error m =
  prerr_endline m;
  exit_usage

(** Deliver the deterministic report (stdout, or [-o FILE] with a stderr
    notice) and map the verdict to the shared exit-code convention. *)
let finish ~label ~ok ~out report =
  (match out with
  | None -> print_string report
  | Some path ->
    let oc = open_out path in
    output_string oc report;
    close_out oc;
    Printf.eprintf "%s: wrote %s\n" label path);
  if ok then exit_clean else exit_findings

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")

(* --- failure-cell bundle emission --- *)

let bundle_cap = 8

let bundles_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundles" ] ~docv:"DIR"
        ~doc:
          (Printf.sprintf
             "Record a TICKRPL replay bundle into $(docv) for each failing cell (first %d), \
              replayable with $(b,ticktock replay)."
             bundle_cap))

(** Record and write up to {!bundle_cap} bundles, one per failing cell.
    [cells] pairs a file stem with a thunk that records the bundle (a
    re-execution of the cell); recording failures are reported to stderr
    and skipped, never fatal — the campaign verdict stands on its own. *)
let write_bundles ~label ~dir (cells : (string * (unit -> Replay.Bundle.t)) list) =
  if cells = [] then Printf.eprintf "%s: no failing cells, no bundles written\n" label
  else begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i (stem, make) ->
        if i < bundle_cap then begin
          let path = Filename.concat dir (stem ^ ".tickrpl") in
          match make () with
          | b ->
            Replay.Bundle.save b path;
            Printf.eprintf "%s: wrote %s\n" label path
          | exception (Replay.Bundle.Refused m | Invalid_argument m | Failure m) ->
            Printf.eprintf "%s: could not record %s: %s\n" label stem m
        end)
      cells;
    let n = List.length cells in
    if n > bundle_cap then
      Printf.eprintf "%s: %d failing cells, bundles capped at %d\n" label n bundle_cap
  end
